"""The dynamic epoch runner: allocation as a process, not a one-shot.

:func:`run_dynamic` executes a churn regime (:class:`DynamicSpec`) on
top of any ``dynamic_capable`` allocator:

* **epoch 0** fills the system — the allocator's one-shot placement of
  the initial ``m`` balls into empty bins;
* **each subsequent epoch** removes a departing cohort under the
  spec's departure policy, injects an arriving cohort drawn from the
  arrival process, and re-establishes the load guarantee under the
  rebalance strategy:

  - ``incremental`` — only the arriving cohort runs through the round
    kernels, placed against the residents' per-bin loads
    (``RoundState(initial_loads=...)``), so per-epoch cost scales with
    the churn, not the population;
  - ``full_rerun`` — the oracle: the entire population is re-placed
    from scratch, paying the one-shot cost every epoch.

Randomness: the root seed spawns two independent
:class:`~numpy.random.SeedSequence` children per epoch — a *control*
stream (arrival counts, departure draws, full-rerun reshuffles) and a
*placement* seed handed verbatim to the adapter.  An epoch's placement
is therefore bitwise-identical to calling the adapter directly with
that child seed and the same residual loads — the value-identity
contract the dynamic tests pin — and a 100%-churn epoch reproduces a
fresh one-shot run exactly.

>>> import repro
>>> res = repro.run_dynamic("heavy", 20_000, 64, seed=7, epochs=4)
>>> res.epochs, bool(res.populations[-1] == 20_000)
(4, True)
"""

from __future__ import annotations

import dataclasses
import math
import time
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.api.spec import (
    capability_note,
    get_dynamic,
    get_spec,
    list_allocators,
)
from repro.core.faulty import FaultModel
from repro.dynamic.faults import FaultState, place_with_loss
from repro.dynamic.spec import DynamicSpec
from repro.dynamic.state import ResidentState
from repro.fastpath.buffers import RoundBuffers
from repro.telemetry import current_telemetry
from repro.utils.seeding import RngFactory, as_seed_sequence
from repro.workloads import (
    Workload,
    WorkloadError,
    as_time_varying,
    as_workload,
)

__all__ = ["DynamicResult", "EpochRecord", "run_dynamic", "run_dynamic_many"]

#: The regime keywords of :func:`run_dynamic` — exactly the fields of
#: :class:`DynamicSpec`, derived so a new spec field is picked up here
#: automatically.
_REGIME_KEYS = tuple(f.name for f in dataclasses.fields(DynamicSpec))


@dataclass(frozen=True)
class EpochRecord:
    """What one epoch did: churn volumes, placement cost, and balance.

    ``epoch`` 0 is the initial fill (no departures); later epochs are
    churn epochs.  ``moved`` counts the balls the rebalance strategy
    actually re-placed this epoch — the arriving cohort under
    ``incremental``, the whole population under ``full_rerun`` — and is
    the quantity the amortization claim compares.
    """

    epoch: int
    arrivals: int
    departures: int
    placed: int
    unplaced: int
    moved: int
    rounds: int
    messages: int
    population: int
    max_load: int
    gap: float
    seconds: float
    #: Bins quarantined during this epoch (fault injection; 0 benign).
    failed_bins: int = 0
    #: Placement acks lost this epoch (fault injection; 0 benign).
    lost_acks: int = 0

    def to_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "arrivals": self.arrivals,
            "departures": self.departures,
            "placed": self.placed,
            "unplaced": self.unplaced,
            "moved": self.moved,
            "rounds": self.rounds,
            "messages": self.messages,
            "population": self.population,
            "max_load": self.max_load,
            "gap": self.gap,
            "seconds": self.seconds,
            "failed_bins": self.failed_bins,
            "lost_acks": self.lost_acks,
        }


@dataclass
class DynamicResult:
    """Outcome of a dynamic run: the per-epoch time series.

    Attributes
    ----------
    algorithm:
        Canonical spec name of the allocator the adapters belong to.
    m, n:
        Initial population and bin count (the population stays pinned
        near ``m`` because departures and arrivals are count-matched).
    spec:
        The executed :class:`DynamicSpec`.
    workload:
        Workload spec string of the arriving cohorts (None = uniform).
    records:
        One :class:`EpochRecord` per epoch, index 0 = initial fill.
    loads:
        Final per-bin resident counts.
    loads_history:
        ``(epochs + 1, n)`` matrix: per-bin loads after each epoch.
    seed_entropy:
        Root entropy, for exact reproduction.
    """

    algorithm: str
    m: int
    n: int
    spec: DynamicSpec
    workload: Optional[str]
    records: list[EpochRecord]
    loads: np.ndarray
    loads_history: np.ndarray
    seed_entropy: tuple = ()
    extra: dict = field(default_factory=dict)

    # -- per-epoch vectors ----------------------------------------------

    @property
    def epochs(self) -> int:
        """Churn epochs executed (excluding the epoch-0 fill)."""
        return len(self.records) - 1

    def _vector(self, name: str, dtype=np.int64) -> np.ndarray:
        return np.array(
            [getattr(r, name) for r in self.records], dtype=dtype
        )

    @property
    def gaps(self) -> np.ndarray:
        """Max-load gap after each epoch (float, index 0 = fill)."""
        return self._vector("gap", np.float64)

    @property
    def max_loads(self) -> np.ndarray:
        return self._vector("max_load")

    @property
    def messages(self) -> np.ndarray:
        """Placement messages per epoch."""
        return self._vector("messages")

    @property
    def moved(self) -> np.ndarray:
        """Balls re-placed per epoch (the rebalance volume)."""
        return self._vector("moved")

    @property
    def rounds(self) -> np.ndarray:
        return self._vector("rounds")

    @property
    def populations(self) -> np.ndarray:
        return self._vector("population")

    @property
    def arrivals(self) -> np.ndarray:
        return self._vector("arrivals")

    @property
    def departures(self) -> np.ndarray:
        return self._vector("departures")

    @property
    def failed_bins(self) -> np.ndarray:
        """Quarantined bins per epoch (all zero without fault injection)."""
        return self._vector("failed_bins")

    @property
    def lost_acks(self) -> int:
        """Total placement acks lost to fault injection across the run."""
        return int(self._vector("lost_acks").sum())

    @property
    def total_messages(self) -> int:
        """Messages across all epochs including the initial fill."""
        return int(self.messages.sum())

    @property
    def churn_messages(self) -> int:
        """Messages across the churn epochs only (fill excluded) —
        the steady-state cost the amortization experiment compares."""
        return int(self.messages[1:].sum())

    @property
    def churn_seconds(self) -> float:
        """Placement wall seconds across the churn epochs only."""
        return float(sum(r.seconds for r in self.records[1:]))

    @property
    def complete(self) -> bool:
        """True when no epoch stranded a ball."""
        return all(r.unplaced == 0 for r in self.records)

    def describe(self) -> str:
        """Multi-line human-readable report of the run."""
        gaps = self.gaps
        msgs = self.messages
        lines = [
            f"algorithm     : {self.algorithm} [dynamic]",
            f"instance      : m={self.m}, n={self.n} "
            f"(m/n={self.m / self.n:.4g})",
            f"regime        : {self.spec.describe()}",
            f"epochs        : {self.epochs} churn epochs + fill",
            f"population    : {int(self.populations[-1])} final "
            f"(fill {int(self.populations[0])})",
            f"gap           : fill {gaps[0]:+.2f}, "
            f"steady mean {gaps[1:].mean():+.2f}, "
            f"worst {gaps.max():+.2f}"
            if self.epochs
            else f"gap           : fill {gaps[0]:+.2f}",
            f"moved/epoch   : {self.moved[1:].mean():,.0f} mean"
            if self.epochs
            else "moved/epoch   : -",
            f"messages      : {self.total_messages:,} total "
            f"({int(msgs[0]):,} fill"
            + (
                f", {msgs[1:].mean():,.0f}/churn epoch)"
                if self.epochs
                else ")"
            ),
            f"complete      : {self.complete}",
        ]
        if self.workload:
            lines.insert(3, f"workload      : {self.workload}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-safe export of the full time series."""
        return {
            "schema": 1,
            "algorithm": self.algorithm,
            "m": int(self.m),
            "n": int(self.n),
            "spec": self.spec.to_dict(),
            "workload": self.workload,
            "records": [r.to_dict() for r in self.records],
            "loads": self.loads.tolist(),
            "loads_history": self.loads_history.tolist(),
            "seed_entropy": [int(e) for e in self.seed_entropy],
            "extra": dict(self.extra),
        }

    def __str__(self) -> str:
        steady = self.gaps[1:].mean() if self.epochs else float("nan")
        return (
            f"DynamicResult({self.algorithm}: m={self.m}, n={self.n}, "
            f"epochs={self.epochs}, steady gap={steady:+.2f})"
        )


def _resolve_entry(algorithm: str):
    """The (spec, dynamic adapter) pair, or a clear capability error."""
    spec = get_spec(algorithm)
    entry = get_dynamic(spec.name)
    if entry is None:
        raise ValueError(
            f"algorithm {spec.name!r} has no dynamic-placement adapter; "
            + capability_note("dynamic_capable")
        )
    return spec, entry


def _dynamic_workload_capable() -> list[str]:
    """Allocators whose *dynamic adapter* accepts non-uniform workloads."""
    return [
        s.name
        for s in list_allocators()
        if s.dynamic_capable and get_dynamic(s.name).workload_capable
    ]


def _check_options(entry, algorithm: str, options: dict[str, Any]) -> None:
    unknown = sorted(set(options) - set(entry.options))
    if unknown:
        valid = ", ".join(entry.options) or "(none)"
        raise ValueError(
            f"unknown dynamic option(s) "
            f"{', '.join(repr(u) for u in unknown)} for algorithm "
            f"{algorithm!r}; valid options: {valid}"
        )


def _resolve_workload(spec, entry, workload):
    wl = as_workload(workload)
    if wl is None:
        return None
    if not entry.workload_capable:
        raise ValueError(
            f"algorithm {spec.name!r} supports the uniform workload "
            f"only in dynamic runs (got workload {wl.describe()!r}); "
            + capability_note(
                "workload_capable", _dynamic_workload_capable()
            )
        )
    if wl.weight != "unit":
        raise WorkloadError(
            "dynamic runs support unit ball weights only: departures "
            "remove specific resident balls, and aggregate-granularity "
            "bookkeeping has no per-ball weight identity to remove "
            f"(got workload {wl.describe()!r}); weighted workloads run "
            "one-shot via repro.allocate(); "
            + capability_note("workload_capable")
        )
    return wl


def _attack_workload(loads: np.ndarray, hot_frac: float) -> Workload:
    """The hotset adversary's contact distribution: the arriving
    cohort's contacts land uniformly on the currently hottest
    ``hot_frac`` fraction of bins (ties broken by bin index, so the
    target set is deterministic in the loads)."""
    n = loads.size
    n_hot = max(1, min(n - 1, math.ceil(hot_frac * n))) if n > 1 else n
    order = np.argsort(-loads, kind="stable")
    p = np.zeros(n, dtype=np.float64)
    p[order[:n_hot]] = 1.0 / n_hot
    return Workload.explicit(p)


def run_dynamic(
    algorithm: str,
    m: int,
    n: int,
    *,
    seed=None,
    spec: Optional[DynamicSpec] = None,
    epochs: int = 16,
    churn: float = 0.1,
    arrivals: str = "fixed",
    departures: str = "uniform",
    rebalance: str = "incremental",
    burst_every: int = 4,
    burst_factor: float = 4.0,
    hot_frac: float = 0.1,
    workload=None,
    time_workload=None,
    fault_model=None,
    backend: Optional[str] = None,
    **options: Any,
) -> DynamicResult:
    """Run allocation under churn: epochs of departures and arrivals.

    Parameters
    ----------
    algorithm:
        Any ``dynamic_capable`` registry name or alias (heavy,
        combined, single, stemann; see ``python -m repro list``).
    m, n:
        Initial population and bin count.  Departures and arrivals are
        count-matched, so the population stays pinned at ``m`` (up to
        protocol-stranded balls).
    seed:
        Root seed; every epoch draws from its own spawned child
        streams, so the whole run replays bitwise.
    spec:
        A complete :class:`DynamicSpec`.  When given it wins over the
        individual regime keywords below.
    epochs, churn, arrivals, departures, rebalance, burst_every,
    burst_factor, hot_frac:
        Convenience construction of the :class:`DynamicSpec` (see its
        docstring for semantics).
    workload:
        Optional workload (spec string or
        :class:`repro.workloads.Workload`) the arriving cohorts are
        drawn from: choice skew and capacity profiles are honored by
        every adapter; weighted balls are rejected (departures are
        count-based).
    time_workload:
        Optional :class:`~repro.workloads.TimeVaryingWorkload` (or
        spec string, e.g. ``"drift:1:2"`` / ``"flash:4:100"``): the
        arriving cohorts' workload varies with the epoch index (skew
        drift, flash crowds).  Mutually exclusive with ``workload``
        and with ``arrivals="hotset_adversary"`` (each owns the
        contact distribution).
    fault_model:
        Optional :class:`~repro.core.faulty.FaultModel`: bins fail and
        recover at epoch boundaries (failed bins quarantined from new
        placements), and placement acks are lost with ghost-slot
        retries.  ``None`` (and the all-zero model, bitwise) keeps the
        benign path untouched.  Incremental rebalancing only.
    backend:
        Kernel backend name pinned for every epoch's placement
        (:mod:`repro.fastpath.backend`); ``None`` keeps the ambient
        selection.  Value-identical either way.
    options:
        Adapter-specific keywords (e.g. ``mode="perball"`` for the
        kernel-backed adapters, ``collision_factor=`` for stemann),
        validated against the registered adapter signature.

    Returns
    -------
    DynamicResult
        The per-epoch gap/max-load/messages/moved-balls time series.
    """
    if m < 1 or n < 1:
        raise ValueError(f"need m >= 1 and n >= 1, got m={m}, n={n}")
    alloc_spec, entry = _resolve_entry(algorithm)
    _check_options(entry, alloc_spec.name, options)
    wl = _resolve_workload(alloc_spec, entry, workload)
    if "buffers" in entry.options and "buffers" not in options:
        # One scratch arena shared by every epoch's placement: the
        # kernel steps reuse its buffers instead of reallocating each
        # round.  Value-preserving (the adapter narrows/chunks without
        # changing any draw), so this is unconditional.
        options = dict(options)
        options["buffers"] = RoundBuffers()
    if spec is None:
        spec = DynamicSpec(
            epochs=epochs,
            churn=churn,
            arrivals=arrivals,
            departures=departures,
            rebalance=rebalance,
            burst_every=burst_every,
            burst_factor=burst_factor,
            hot_frac=hot_frac,
        )
    tv = as_time_varying(time_workload)
    if tv is not None and wl is not None:
        raise ValueError(
            "workload and time_workload are mutually exclusive: a "
            "time-varying workload replaces the static cohort workload "
            "epoch by epoch"
        )
    if spec.arrivals == "hotset_adversary" and (
        wl is not None or tv is not None
    ):
        raise ValueError(
            "hotset_adversary arrivals own the cohort contact "
            "distribution (aimed at the currently hottest bins every "
            "epoch); they cannot combine with workload= or "
            "time_workload="
        )
    if fault_model is not None and spec.rebalance != "incremental":
        raise ValueError(
            "fault injection supports incremental rebalancing only: "
            "the full_rerun oracle re-places the whole population, "
            "which has no per-epoch quarantine/ghost semantics "
            f"(got rebalance={spec.rebalance!r})"
        )
    fault = FaultState(n, fault_model) if fault_model is not None else None
    degraded = (
        spec.arrivals == "hotset_adversary"
        or spec.departures == "greedy_adversary"
        or (fault_model is not None and not fault_model.is_null)
    )
    if degraded and "drain_settle" in entry.options:
        # Adversarially skewed residuals break the fresh-fill premise
        # of the load-oblivious phase-2 handoff: let the settle phase
        # drain the cohort below the population-average cap instead of
        # handing a large straggler mass to A_light (graceful
        # degradation; see dynamic_heavy).  Benign specs never reach
        # here, so the default path stays bitwise-unchanged.
        options = dict(options)
        options.setdefault("drain_settle", True)
    # Telemetry: one sink captured for the whole run; every hook below
    # is a single ``is not None`` branch when off, and none of them
    # touches a seed or stream.
    tele = current_telemetry()
    root = as_seed_sequence(seed)
    entropy = tuple(RngFactory(root).root_entropy)
    # Two independent children per epoch: [control, placement].  The
    # placement child goes to the adapter verbatim, so an epoch's
    # placement can be reproduced by calling the adapter directly.
    children = root.spawn(2 * (spec.epochs + 1))
    residents = ResidentState(n)
    records: list[EpochRecord] = []
    history = np.zeros((spec.epochs + 1, n), dtype=np.int64)

    def _place(cohort: int, initial: np.ndarray, place_seed, epoch_wl):
        from repro.fastpath.backend import use_backend

        kwargs = dict(options)
        if entry.workload_capable and epoch_wl is not None:
            kwargs["workload"] = epoch_wl
        # Every epoch's placement runs on the pinned kernel backend
        # (value-identical across backends; wall clock only).
        with use_backend(backend):
            return entry.runner(
                cohort, n, initial_loads=initial, seed=place_seed, **kwargs
            )

    def _epoch_workload(epoch: int):
        """The cohort workload for one epoch — static, time-varying,
        or the hotset attack — quarantined around failed bins."""
        if spec.arrivals == "hotset_adversary" and epoch > 0:
            # The fill is unattacked (every bin is equally cold); the
            # attack re-aims at the hottest bins each churn epoch,
            # post-departure — the adaptive adversary.
            epoch_wl = _attack_workload(residents.loads, spec.hot_frac)
        elif tv is not None:
            epoch_wl = tv.workload_at(epoch, spec.epochs, n)
        else:
            epoch_wl = wl
        if fault is not None:
            epoch_wl = fault.quarantined(epoch_wl, n)
        return epoch_wl

    def _execute(cohort: int, initial: np.ndarray, place_seed, ctrl):
        """One cohort placement, with ack-loss retries when modeled.
        Returns (per-bin acked counts, (placed, unplaced, rounds,
        messages, lost_acks), seconds)."""
        epoch_wl = _epoch_workload(len(records))
        start = time.perf_counter()
        if fault is not None and fault.model.loss_prob > 0:
            out = place_with_loss(
                lambda c, i, s: _place(c, i, s, epoch_wl),
                cohort,
                initial,
                place_seed,
                fault.model.loss_prob,
                ctrl.stream("dynamic", "loss"),
            )
            fault.lost_acks += out.lost_acks
            counts = out.cohort
            stats = (
                out.placed,
                out.unplaced,
                out.rounds,
                out.messages,
                out.lost_acks,
            )
        else:
            placement = _place(cohort, initial, place_seed, epoch_wl)
            counts = placement.loads.astype(np.int64) - initial
            stats = (
                placement.placed,
                placement.unplaced,
                placement.rounds,
                placement.total_messages,
                0,
            )
        elapsed = time.perf_counter() - start
        if tele is not None:
            tele.complete(
                "placement",
                start,
                cat="dynamic",
                epoch=len(records),
                cohort=cohort,
            )
        return counts, stats, elapsed

    def _record(
        epoch: int,
        arrived: int,
        departed: int,
        stats: tuple,
        moved: int,
        seconds: float,
    ) -> None:
        placed, unplaced, rounds, messages, lost = stats
        current = residents.loads
        population = int(current.sum())
        max_load = int(current.max(initial=0))
        if tele is not None:
            gap = max_load - population / n if population else 0.0
            failed = fault.failed_count if fault is not None else 0
            tele.count("dynamic.epochs")
            tele.count("dynamic.messages", messages)
            tele.count("dynamic.moved", moved)
            tele.observe("dynamic.epoch.gap", gap)
            tele.observe("dynamic.epoch.messages", messages)
            tele.observe("dynamic.epoch.moved", moved)
            tele.gauge("dynamic.failed_bins", failed)
            if lost:
                tele.count("dynamic.lost_acks", lost)
        records.append(
            EpochRecord(
                epoch=epoch,
                arrivals=arrived,
                departures=departed,
                placed=placed,
                unplaced=unplaced,
                moved=moved,
                rounds=rounds,
                messages=messages,
                population=population,
                max_load=max_load,
                gap=max_load - population / n if population else 0.0,
                seconds=seconds,
                failed_bins=fault.failed_count if fault is not None else 0,
                lost_acks=lost,
            )
        )
        history[epoch] = current

    # -- epoch 0: the initial fill --------------------------------------
    epoch_start = tele.begin() if tele is not None else 0.0
    fill_ctrl = RngFactory(children[0])
    if fault is not None:
        fault.step(fill_ctrl.stream("dynamic", "faults"))
    counts, stats, elapsed = _execute(
        m, np.zeros(n, dtype=np.int64), children[1], fill_ctrl
    )
    residents.add_cohort(0, counts)
    _record(0, m, 0, stats, stats[0], elapsed)
    if tele is not None:
        tele.complete("epoch", epoch_start, cat="dynamic", epoch=0, fill=True)

    # -- churn epochs ---------------------------------------------------
    for epoch in range(1, spec.epochs + 1):
        if tele is not None:
            epoch_start = tele.begin()
        ctrl = RngFactory(children[2 * epoch])
        place_seed = children[2 * epoch + 1]
        if fault is not None:
            # Fail/recover transitions at the epoch boundary, from the
            # control child's own "faults" stream (independent of the
            # arrival/departure streams by construction, so the benign
            # draws are unperturbed).
            fault.step(ctrl.stream("dynamic", "faults"))
        if spec.arrivals == "poisson":
            count = spec.arrival_count(
                epoch, m, ctrl.stream("dynamic", "arrivals")
            )
        else:
            count = spec.arrival_count(epoch, m)
        # Departures and arrivals are count-matched (the pinned-
        # population contract), so a draw exceeding the population —
        # possible only for Poisson arrivals near churn=1 — is clamped
        # for both sides rather than ratcheting the population up.
        count = min(count, residents.population)
        if count == 0:
            # A zero-churn epoch is a strict no-op: no departure draw,
            # no placement, bitwise-stable loads.
            _record(epoch, 0, 0, (0, 0, 0, 0, 0), 0, 0.0)
            if tele is not None:
                tele.complete(
                    "epoch", epoch_start, cat="dynamic", epoch=epoch
                )
            continue
        departing = count
        residents.depart(
            departing,
            spec.departures,
            ctrl.stream("dynamic", "departures"),
            hot_frac=spec.hot_frac,
        )
        base = residents.loads
        if spec.rebalance == "incremental":
            counts, stats, elapsed = _execute(count, base, place_seed, ctrl)
            residents.add_cohort(epoch, counts)
            moved = stats[0]
        else:  # full_rerun: the oracle re-places the whole population
            total = residents.population + count
            epoch_wl = _epoch_workload(epoch)
            start = time.perf_counter()
            placement = _place(
                total, np.zeros(n, dtype=np.int64), place_seed, epoch_wl
            )
            elapsed = time.perf_counter() - start
            # The arriving cohort joins before the reshuffle so its
            # balls get bin positions (and ages) like everyone else's;
            # its pre-reshuffle bin composition is a placeholder.
            placeholder = np.zeros(n, dtype=np.int64)
            placeholder[0] = count
            residents.add_cohort(epoch, placeholder)
            residents.reshuffle(
                placement.loads, ctrl.stream("dynamic", "reshuffle")
            )
            moved = placement.placed
            stats = (
                placement.placed,
                placement.unplaced,
                placement.rounds,
                placement.total_messages,
                0,
            )
        _record(epoch, count, departing, stats, moved, elapsed)
        if tele is not None:
            tele.complete("epoch", epoch_start, cat="dynamic", epoch=epoch)

    extra: dict = {"options": sorted(options)}
    if fault is not None:
        extra["faults"] = fault.to_dict()
    if tv is not None:
        extra["time_workload"] = tv.to_dict()
    return DynamicResult(
        algorithm=alloc_spec.name,
        m=m,
        n=n,
        spec=spec,
        workload=(
            wl.describe()
            if wl is not None
            else (tv.describe() if tv is not None else None)
        ),
        records=records,
        loads=residents.loads,
        loads_history=history,
        seed_entropy=entropy,
        extra=extra,
    )


def _dynamic_task(args: tuple) -> DynamicResult:
    """Module-level worker entry (picklable for process pools)."""
    algorithm, m, n, child, spec, workload, time_workload, fault, options = (
        args
    )
    return run_dynamic(
        algorithm,
        m,
        n,
        seed=child,
        spec=spec,
        workload=workload,
        time_workload=time_workload,
        fault_model=fault,
        **options,
    )


def run_dynamic_many(
    algorithm: str,
    m: int,
    n: int,
    *,
    repeats: int,
    seed=None,
    workers: Optional[int] = None,
    spec: Optional[DynamicSpec] = None,
    workload=None,
    time_workload=None,
    fault_model=None,
    **kwargs: Any,
) -> list[DynamicResult]:
    """Repeat a dynamic run over independent seed-spawned streams.

    The repetition idiom of :func:`repro.api.allocate_many`: repeat
    ``r`` runs on the ``r``-th spawned child of the root seed, so the
    batch replays exactly and results are identical for any
    ``workers`` count (process fan-out never changes values, only
    wall clock — the property the dynamic reproducibility tests pin).

    ``kwargs`` are the regime keywords and adapter options of
    :func:`run_dynamic` (ignored regime keywords when ``spec`` is
    given, exactly as there).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if spec is None:
        regime = {
            k: kwargs.pop(k) for k in _REGIME_KEYS if k in kwargs
        }
        spec = DynamicSpec(**regime)
    else:
        for k in _REGIME_KEYS:
            kwargs.pop(k, None)
    children = as_seed_sequence(seed).spawn(repeats)
    tasks = [
        (
            algorithm,
            m,
            n,
            child,
            spec,
            workload,
            time_workload,
            fault_model,
            dict(kwargs),
        )
        for child in children
    ]
    if workers is not None and workers > 1 and len(tasks) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(_dynamic_task, tasks))
    return [_dynamic_task(t) for t in tasks]
