"""Integration tests asserting the paper's theorem-level claims.

One test per quantitative statement, at test-friendly scales.  These
are the "does the reproduction actually reproduce" checks, complementary
to the per-module unit tests.
"""

import math

import numpy as np
import pytest

from repro.analysis.theory import predicted_rounds, theorem7_t
from repro.baselines import run_greedy_d, run_single_choice
from repro.core import run_asymmetric, run_heavy
from repro.fastpath.sampling import multinomial_occupancy
from repro.light import run_light
from repro.lowerbound.adversary import uniform_adversary
from repro.lowerbound.recursion import trace_recursion
from repro.utils.logstar import log_star
from repro.utils.seeding import RngFactory


class TestTheorem1:
    """Symmetric algorithm: m/n + O(1) load, O(log log(m/n) + log* n)
    rounds, O(m) messages, per-ball O(1)/O(log n)."""

    def test_load_gap_constant_over_m_sweep(self):
        n = 512
        for ratio in (8, 64, 512, 4096):
            res = run_heavy(n * ratio, n, seed=42, mode="aggregate")
            assert res.gap <= 8.0, f"ratio {ratio}: gap {res.gap}"

    def test_gap_does_not_grow_with_m(self):
        """The defining contrast with single-choice: the heavy gap is
        m-independent."""
        n = 512
        g_small = run_heavy(n * 8, n, seed=1).gap
        g_huge = run_heavy(n * 2**20, n, seed=1, mode="aggregate").gap
        assert g_huge <= g_small + 4

    def test_round_scaling(self):
        n = 512
        rounds = [
            run_heavy(n * 2**e, n, seed=1, mode="aggregate").rounds
            for e in (2, 8, 16, 24)
        ]
        # growth must slow down (double-log): consecutive deltas shrink
        deltas = [b - a for a, b in zip(rounds, rounds[1:])]
        assert deltas[-1] <= deltas[0] + 2
        assert rounds[-1] <= predicted_rounds(n * 2**24, n) + 4

    def test_message_budget(self):
        m, n = 2**20, 1024
        res = run_heavy(m, n, seed=1)
        assert res.total_messages <= 4 * m
        s = res.messages.summary()
        assert s["per_ball_mean"] <= 8
        assert s["per_ball_max"] <= 12 * math.log(n)


class TestTheorem1VsNaive:
    def test_heavy_beats_single_choice_decisively(self):
        m, n = 2**20, 1024
        heavy_gap = run_heavy(m, n, seed=7).gap
        naive_gap = run_single_choice(m, n, seed=7).gap
        # naive pays sqrt((m/n) log n) ~ 84; heavy pays O(1).
        assert naive_gap > 10 * heavy_gap

    def test_heavy_matches_sequential_quality(self):
        """The point of the paper: parallel O(1) gap, like greedy[2]'s
        O(log log n), without sequential processing."""
        m, n = 2**19, 1024
        heavy_gap = run_heavy(m, n, seed=7).gap
        greedy_gap = run_greedy_d(m, n, 2, seed=7).gap
        assert abs(heavy_gap - greedy_gap) <= 5


class TestTheorem2:
    """Lower bound: threshold algorithms with uniform contacts need
    Omega(log log(m/n)) rounds."""

    def test_single_round_rejection_floor(self):
        m_balls, n = 2**18, 1024
        rng = RngFactory(3).stream("claims")
        thresholds = uniform_adversary.thresholds(m_balls, n, n, rng)
        counts = multinomial_occupancy(m_balls, n, rng)
        rejected = int(np.maximum(counts - thresholds, 0).sum())
        floor = math.sqrt(m_balls * n) / theorem7_t(m_balls, n)
        assert rejected >= 0.05 * floor

    def test_recursion_rounds_lower_bound(self):
        m, n = 2**24, 4096
        trace = trace_recursion(m, n, seed=3)
        assert trace.rounds_to_On >= trace.predicted_rounds
        # and the upper bound side: A_heavy's phase-1 round count is
        # within a constant factor of the measured best case.
        res = run_heavy(m, n, seed=3, mode="aggregate")
        assert res.extra["phase1_rounds"] <= 4 * max(trace.rounds_to_On, 1) + 4

    def test_matching_bounds_sandwich(self):
        """Upper bound (Thm 1) and lower bound (Thm 2) must bracket:
        measured A_heavy rounds = Theta(log log (m/n))."""
        n = 1024
        for e in (8, 16):
            m = n * 2**e
            loglog = math.log2(e)
            res = run_heavy(m, n, seed=5, mode="aggregate")
            assert 0.5 * loglog <= res.rounds <= 6 * loglog + 10


class TestTheorem3:
    """Asymmetric: m/n + O(1) in O(1) rounds."""

    def test_constant_rounds_sweep(self):
        n = 256
        rounds = [
            run_asymmetric(n * 2**e, n, seed=11).rounds for e in (4, 8, 12, 16)
        ]
        assert max(rounds) <= 8

    def test_gap_sweep(self):
        n = 256
        for e in (4, 8, 12):
            res = run_asymmetric(n * 2**e, n, seed=11)
            assert res.gap <= 8.0

    def test_faster_than_symmetric(self):
        """Asymmetry buys rounds: O(1) vs O(log log(m/n))."""
        m, n = 2**24, 256
        asym = run_asymmetric(m, n, seed=2)
        sym = run_heavy(m, n, seed=2, mode="aggregate")
        assert asym.rounds <= sym.rounds


class TestTheorem5:
    """A_light black-box guarantees used by phase 2."""

    def test_all_guarantees_at_once(self):
        for n in (512, 8192):
            out = run_light(n, n, seed=13)
            assert out.max_load <= 2
            assert out.rounds <= log_star(n) + 6
            assert out.total_messages <= 12 * n
            assert not out.used_fallback


class TestSuccessProbabilityNote:
    def test_trivial_within_budget_when_n_tiny(self):
        from repro.core import run_combined

        res = run_combined(2**22, 3, seed=1)
        assert res.extra["branch"] == "trivial"
        assert res.rounds <= 3
        assert res.max_load == math.ceil(2**22 / 3)
