"""Tests for the threshold adversaries."""

import numpy as np
import pytest

from repro.lowerbound.adversary import (
    ALL_ADVERSARIES,
    dyadic_adversary,
    hoarding_adversary,
    random_split_adversary,
    two_tier_adversary,
    uniform_adversary,
)


@pytest.mark.parametrize("adversary", ALL_ADVERSARIES, ids=lambda a: a.name)
class TestBudgetContract:
    def test_sum_exact(self, adversary, rng):
        m_balls, n, extra = 10_000, 64, 64
        thresholds = adversary.thresholds(m_balls, n, extra, rng)
        assert thresholds.sum() == m_balls + extra

    def test_non_negative(self, adversary, rng):
        thresholds = adversary.thresholds(5000, 32, 100, rng)
        assert thresholds.min() >= 0

    def test_shape(self, adversary, rng):
        assert adversary.thresholds(5000, 32, 10, rng).shape == (32,)

    def test_negative_extra_rejected(self, adversary, rng):
        with pytest.raises(ValueError):
            adversary.thresholds(100, 4, -1, rng)


class TestSpecificShapes:
    def test_uniform_is_flat(self, rng):
        thresholds = uniform_adversary.thresholds(6400, 64, 0, rng)
        assert thresholds.max() - thresholds.min() <= 1

    def test_two_tier_has_two_levels(self, rng):
        thresholds = two_tier_adversary.thresholds(6400, 64, 0, rng)
        lo, hi = thresholds[32:].mean(), thresholds[:32].mean()
        assert hi > 2 * lo

    def test_hoarding_concentrates(self, rng):
        thresholds = hoarding_adversary.thresholds(6400, 64, 0, rng)
        top = np.sort(thresholds)[::-1][:4].sum()
        assert top > 0.9 * thresholds.sum()

    def test_dyadic_spreads_classes(self, rng):
        m_balls, n = 2**16, 256
        thresholds = dyadic_adversary.thresholds(m_balls, n, n, rng)
        # must produce at least 3 distinct threshold levels
        assert len(np.unique(thresholds)) >= 3

    def test_random_split_deterministic_per_stream(self):
        a = random_split_adversary.thresholds(
            1000, 16, 0, np.random.default_rng(5)
        )
        b = random_split_adversary.thresholds(
            1000, 16, 0, np.random.default_rng(5)
        )
        assert np.array_equal(a, b)

    def test_random_split_varies(self):
        a = random_split_adversary.thresholds(
            1000, 16, 0, np.random.default_rng(1)
        )
        b = random_split_adversary.thresholds(
            1000, 16, 0, np.random.default_rng(2)
        )
        assert not np.array_equal(a, b)
