"""Tests for the unified allocator registry and dispatch API."""

import json

import numpy as np
import pytest

import repro
from repro.api import (
    AGGREGATE_THRESHOLD,
    allocate,
    allocate_many,
    allocator_names,
    get_spec,
    list_allocators,
    resolve_name,
    spawn_seeds,
    sweep,
)

M, N, SEED = 10_000, 64, 7

#: Every public ``run_*`` entry point that returns an AllocationResult
#: must be the registered runner of exactly this spec.
EXPECTED_RUNNERS = {
    "heavy": repro.run_heavy,
    "asymmetric": repro.run_asymmetric,
    "combined": repro.run_combined,
    "trivial": repro.run_trivial,
    "light": repro.run_light_allocation,
    "faulty": repro.run_heavy_faulty,
    "multicontact": repro.run_heavy_multicontact,
    "single": repro.run_single_choice,
    "greedy": repro.run_greedy_d,
    "dchoice": repro.run_parallel_dchoice,
    "stemann": repro.run_stemann,
    "batched": repro.run_batched_dchoice,
}


class TestRegistryCompleteness:
    def test_every_public_entry_point_registered(self):
        assert set(allocator_names()) == set(EXPECTED_RUNNERS)
        for name, runner in EXPECTED_RUNNERS.items():
            assert get_spec(name).runner is runner, name

    def test_every_public_run_function_covered(self):
        """No ``run_*`` in repro.__all__ may bypass the registry.

        ``run_light`` is covered via its ``run_light_allocation``
        wrapper; ``run_threshold_protocol`` is a phase subroutine (it
        returns a ThresholdPhaseOutcome, not an AllocationResult);
        ``run_dynamic``/``run_dynamic_many`` are the dynamic epoch
        runner (DynamicResult time series over registered adapters,
        not an allocator).
        """
        registered = {spec.runner for spec in list_allocators()}
        exempt = {
            "run_light",
            "run_threshold_protocol",
            "run_dynamic",
            "run_dynamic_many",
        }
        public = [
            name
            for name in repro.__all__
            if name.startswith("run_") and name not in exempt
        ]
        assert public, "sanity: repro exports run_* entry points"
        for name in public:
            assert getattr(repro, name) in registered, name

    def test_aliases_resolve(self):
        assert resolve_name("greedy_d") == "greedy"
        assert resolve_name("single_choice") == "single"
        assert resolve_name("batched_dchoice") == "batched"
        assert resolve_name("A_HEAVY") == "heavy"
        assert resolve_name("parallel-dchoice") == "dchoice"

    def test_unknown_name_lists_registry(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            resolve_name("quantum")

    def test_capability_flags(self):
        assert get_spec("greedy").sequential
        assert get_spec("faulty").fault_tolerant
        assert get_spec("multicontact").supports_multicontact
        assert not get_spec("heavy").sequential
        assert not get_spec("heavy").fault_tolerant

    def test_specs_expose_signature_options(self):
        spec = get_spec("faulty")
        assert "crash_prob" in spec.options
        assert "loss_prob" in spec.options
        heavy = get_spec("heavy")
        assert heavy.config_type is repro.HeavyConfig
        assert "stop_factor" in heavy.config_fields


class TestOptionValidation:
    def test_unknown_option_rejected_with_valid_list(self):
        with pytest.raises(ValueError, match="bogus.*valid options"):
            allocate("heavy", M, N, seed=SEED, bogus=3)

    def test_option_for_other_algorithm_rejected(self):
        # d belongs to greedy/multicontact, not heavy.
        with pytest.raises(ValueError, match="unknown option"):
            allocate("heavy", M, N, seed=SEED, d=2)

    def test_mode_unsupported_by_algorithm(self):
        with pytest.raises(ValueError, match="supported: perball, aggregate"):
            allocate("asymmetric", M, N, seed=SEED, mode="engine")

    def test_mode_on_modeless_algorithm(self):
        with pytest.raises(ValueError, match="does not take an execution"):
            allocate("trivial", M, N, seed=SEED, mode="aggregate")

    def test_config_fields_passed_flat(self):
        via_api = allocate("heavy", M, N, seed=SEED, stop_factor=3.0)
        direct = repro.run_heavy(
            M, N, seed=SEED, config=repro.HeavyConfig(stop_factor=3.0)
        )
        assert np.array_equal(via_api.loads, direct.loads)

    def test_config_and_flat_fields_conflict(self):
        with pytest.raises(ValueError, match="not both"):
            allocate(
                "heavy",
                M,
                N,
                seed=SEED,
                config=repro.HeavyConfig(),
                stop_factor=3.0,
            )

    def test_runner_kwargs_forwarded(self):
        res = allocate("greedy", M, N, seed=SEED, d=3)
        assert res.algorithm == "greedy[3]"


class TestModeAuto:
    def test_auto_picks_perball_for_small_instances(self):
        res = allocate("single", M, N, seed=SEED)
        assert res.extra["api"]["mode"] == "perball"

    def test_auto_picks_aggregate_above_threshold(self):
        res = allocate("single", AGGREGATE_THRESHOLD, N, seed=SEED)
        assert res.extra["api"]["mode"] == "aggregate"

    def test_auto_none_for_modeless_algorithms(self):
        res = allocate("trivial", M, N, seed=SEED)
        assert res.extra["api"]["mode"] is None

    def test_explicit_mode_respected(self):
        res = allocate("heavy", M, N, seed=SEED, mode="aggregate")
        assert res.extra["api"]["mode"] == "aggregate"

    def test_mode_none_never_upgrades(self):
        # None = the algorithm's own default, even above the threshold
        # — the behavior of calling run_* directly.
        res = allocate("single", AGGREGATE_THRESHOLD, N, seed=SEED, mode=None)
        assert res.extra["api"]["mode"] == "perball"

    def test_run_one_reproduces_direct_defaults_at_large_m(self):
        # The experiments harness must keep returning the historical
        # (perball-default) numbers for any m unless a mode is given.
        from repro.experiments.parallel import run_one

        summary = run_one("single", AGGREGATE_THRESHOLD, N, seed=3)
        direct = repro.run_single_choice(
            AGGREGATE_THRESHOLD, N, seed=3, mode="perball"
        )
        assert summary["max_load"] == direct.max_load
        assert summary["total_messages"] == direct.total_messages

    def test_algorithms_tuple_picklable(self):
        import copy
        import pickle

        from repro.experiments.parallel import ALGORITHMS

        assert pickle.loads(pickle.dumps(ALGORITHMS)) == tuple(ALGORITHMS)
        assert copy.deepcopy(ALGORITHMS) == tuple(ALGORITHMS)
        assert "greedy_d" in ALGORITHMS  # alias-aware membership


class TestShimEquivalence:
    """allocate(name, ...) must be bitwise-identical to run_*(...)."""

    CASES = [
        ("heavy", {}),
        ("asymmetric", {}),
        ("combined", {}),
        ("trivial", {}),
        ("single", {}),
        ("greedy", {"d": 2}),
        ("stemann", {}),
        ("batched", {"d": 2}),
        ("dchoice", {"d": 2}),
        ("faulty", {"crash_prob": 0.01, "loss_prob": 0.02}),
        ("multicontact", {"d": 2}),
    ]

    @pytest.mark.parametrize("name,options", CASES)
    def test_loads_bitwise_match(self, name, options):
        runner = EXPECTED_RUNNERS[name]
        via_api = allocate(name, M, N, seed=SEED, **options)
        direct = runner(M, N, seed=SEED, **options)
        assert np.array_equal(via_api.loads, direct.loads)
        assert via_api.rounds == direct.rounds
        assert via_api.total_messages == direct.total_messages

    def test_light_equivalence(self):
        # light requires m <= 2n; its registered runner IS the wrapper.
        via_api = allocate("light", 100, N, seed=SEED)
        direct = repro.run_light_allocation(100, N, seed=SEED)
        assert np.array_equal(via_api.loads, direct.loads)
        assert via_api.max_load <= 2


class TestBatchExecution:
    def test_spawn_seeds_independent_and_reproducible(self):
        a = spawn_seeds(5, 3)
        b = spawn_seeds(5, 3)
        states = [tuple(s.generate_state(4)) for s in a]
        assert len(set(states)) == 3
        assert states == [tuple(s.generate_state(4)) for s in b]

    def test_allocate_many_seed_independence(self):
        results = allocate_many("single", M, N, repeats=3, seed=5)
        assert len(results) == 3
        for i in range(3):
            assert results[i].extra["api"]["repeat"] == i
            for j in range(i + 1, 3):
                assert not np.array_equal(results[i].loads, results[j].loads)

    def test_allocate_many_reproducible_from_root_seed(self):
        first = allocate_many("single", M, N, repeats=3, seed=5)
        again = allocate_many("single", M, N, repeats=3, seed=5)
        for a, b in zip(first, again):
            assert np.array_equal(a.loads, b.loads)
            assert a.seed_entropy == b.seed_entropy

    def test_allocate_many_workers_match_serial(self):
        serial = allocate_many("single", M, N, repeats=4, seed=9)
        pooled = allocate_many("single", M, N, repeats=4, seed=9, workers=2)
        for a, b in zip(serial, pooled):
            assert np.array_equal(a.loads, b.loads)

    def test_allocate_many_workers_match_serial_with_workload(self):
        """Workload runs must be independent of the workers count: the
        workload spec travels inside the pickled task and every cell's
        stream is spawned from the root seed."""
        wl = "zipf:1.1+geomw:0.5+propcap"
        serial = allocate_many(
            "heavy", M, N, repeats=3, seed=9, workload=wl
        )
        pooled = allocate_many(
            "heavy", M, N, repeats=3, seed=9, workload=wl, workers=2
        )
        for a, b in zip(serial, pooled):
            assert np.array_equal(a.loads, b.loads)
            assert (
                a.extra["workload"]["total_weight"]
                == b.extra["workload"]["total_weight"]
            )
            assert a.extra["api"]["workload"] == wl

    def test_sweep_workers_match_serial_with_workload(self):
        points = [(M, 32), (M // 2, 16)]
        serial = sweep("single", points, repeats=2, seed=3, workload="zipf:1.1")
        pooled = sweep(
            "single", points, repeats=2, seed=3, workload="zipf:1.1", workers=2
        )
        for a, b in zip(serial, pooled):
            assert np.array_equal(a.loads, b.loads)

    def test_allocate_many_accepts_generator_seed(self):
        # The package-wide SeedLike forms all work, Generator included.
        first = allocate_many(
            "single", M, N, repeats=2, seed=np.random.default_rng(5)
        )
        again = allocate_many(
            "single", M, N, repeats=2, seed=np.random.default_rng(5)
        )
        assert not np.array_equal(first[0].loads, first[1].loads)
        for a, b in zip(first, again):
            assert np.array_equal(a.loads, b.loads)

    def test_allocate_many_rejects_bad_repeats(self):
        with pytest.raises(ValueError, match="repeats"):
            allocate_many("single", M, N, repeats=0, seed=1)

    def test_sweep_grid_and_coordinates(self):
        results = sweep("single", [(M, 32), (2 * M, 64)], repeats=2, seed=3)
        assert [(r.m, r.n) for r in results] == [
            (M, 32),
            (M, 32),
            (2 * M, 64),
            (2 * M, 64),
        ]
        assert [
            (r.extra["api"]["point"], r.extra["api"]["repeat"])
            for r in results
        ] == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_sweep_cells_independent(self):
        results = sweep("single", [(M, 32)], repeats=2, seed=3)
        assert not np.array_equal(results[0].loads, results[1].loads)

    def test_sweep_dict_points_override_options(self):
        results = sweep(
            "greedy", [{"m": M, "n": 32, "d": 3}, (M, 32)], seed=1, d=2
        )
        assert results[0].algorithm == "greedy[3]"
        assert results[1].algorithm == "greedy[2]"

    def test_sweep_point_requires_m_and_n(self):
        with pytest.raises(ValueError, match="must provide 'm' and 'n'"):
            sweep("single", [{"m": M}], seed=1)

    def test_sweep_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one point"):
            sweep("single", [], seed=1)


class TestSerialization:
    def test_round_trip_through_json(self):
        res = allocate("heavy", M, N, seed=SEED)
        data = res.to_dict()
        text = json.dumps(data)  # must be JSON-safe as-is
        back = repro.AllocationResult.from_dict(json.loads(text))
        assert np.array_equal(back.loads, res.loads)
        assert back.max_load == res.max_load
        assert back.metrics.rounds == res.metrics.rounds
        assert np.array_equal(
            back.messages.bin_received, res.messages.bin_received
        )
        assert back.to_dict() == data  # stable under re-serialization

    def test_sweep_results_persist_via_export(self):
        from repro.experiments.export import (
            results_from_json,
            results_to_json,
        )

        results = sweep("single", [(M, 32)], repeats=2, seed=3)
        text = results_to_json(results)
        back = results_from_json(text)
        assert len(back) == 2
        for orig, restored in zip(results, back):
            assert np.array_equal(orig.loads, restored.loads)
            assert restored.extra["api"]["repeat"] == orig.extra["api"]["repeat"]

    def test_incomplete_result_round_trips(self):
        res = allocate("heavy", M, N, seed=SEED, handoff=False)
        assert not res.complete
        back = repro.AllocationResult.from_dict(res.to_dict())
        assert back.unallocated == res.unallocated
        assert not back.complete


class TestCliRegistryDriven:
    def test_list_command(self, capsys):
        from repro.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in allocator_names():
            assert name in out
        assert "fault_tolerant" in out
        assert "Theorem 1" in out

    def test_every_spec_is_a_subcommand(self, capsys):
        from repro.__main__ import main

        assert main(["light", "--m", "50", "--n", "32", "--seed", "1"]) == 0
        assert "light" in capsys.readouterr().out
        assert main(["faulty", "--m", "2000", "--n", "32", "--seed", "1",
                     "--crash-prob", "0.01"]) == 0
        assert "faulty" in capsys.readouterr().out

    def test_mode_choices_derived_from_registry(self, capsys):
        from repro.__main__ import main

        # asymmetric does not support engine mode: argparse must reject
        # it (choices come from the spec, not a hand-written list).
        with pytest.raises(SystemExit) as excinfo:
            main(["asymmetric", "--m", "100", "--n", "10", "--mode", "engine"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice" in err
        # trivial has no modes at all, so --mode is not even an option.
        with pytest.raises(SystemExit):
            main(["trivial", "--m", "100", "--n", "10", "--mode", "perball"])

    def test_api_doctests(self):
        import doctest

        import repro.api
        import repro.api.dispatch

        for module in (repro.api, repro.api.dispatch):
            results = doctest.testmod(module, verbose=False)
            assert results.failed == 0, module.__name__


class TestKernelCapability:
    def test_kernel_capability_listed(self, capsys):
        from repro.__main__ import main

        assert main(["list"]) == 0
        assert "kernel" in capsys.readouterr().out

    def test_vectorized_specs_are_kernel_backed(self):
        # Every spec with an aggregate mode must run on the shared
        # RoundState kernels (the acceptance bar of ISSUE 2).
        for spec in repro.list_allocators():
            if "aggregate" in spec.modes:
                assert spec.kernel_backed, spec.name
        # ... and so are the perball-only protocols refactored onto it.
        for name in ("light", "trivial", "faulty", "multicontact", "dchoice"):
            assert repro.get_spec(name).kernel_backed, name

    def test_sequential_and_batched_not_kernel_backed(self):
        assert not repro.get_spec("greedy").kernel_backed
        assert not repro.get_spec("batched").kernel_backed

    def test_auto_upgrade_requires_kernel_flag(self):
        from dataclasses import replace

        from repro.api import AGGREGATE_THRESHOLD, resolve_mode

        spec = repro.get_spec("heavy")
        assert resolve_mode(spec, AGGREGATE_THRESHOLD, "auto") == "aggregate"
        unflagged = replace(spec, kernel_backed=False)
        assert resolve_mode(unflagged, AGGREGATE_THRESHOLD, "auto") == "perball"

    def test_stemann_gained_aggregate_mode(self):
        res = allocate("stemann", AGGREGATE_THRESHOLD, 256, seed=SEED)
        assert res.extra["api"]["mode"] == "aggregate"
        assert res.complete


class TestCliBench:
    def test_bench_subcommand_times_registry(self, capsys):
        from repro.__main__ import main

        code = main(
            ["bench", "--m", "4000", "--n", "16", "--seeds", "1",
             "--algorithms", "heavy,single"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "balls/s" in out
        # both modes of each requested algorithm appear
        for token in ("heavy", "single", "perball", "aggregate"):
            assert token in out
        assert "stemann" not in out  # restricted to the requested set

    def test_bench_kernel_only_excludes_batched(self, capsys):
        from repro.__main__ import main

        assert main(
            ["bench", "--m", "2000", "--n", "16", "--kernel-only"]
        ) == 0
        out = capsys.readouterr().out
        assert "batched" not in out
        assert "heavy" in out

    def test_bench_honors_seed_flag(self):
        from repro.api import benchmark_registry

        # --seed S --seeds k benches seeds S..S+k-1; spot-check the
        # plumbing by reproducing the gap of an explicit seed-42 run.
        import repro

        records = benchmark_registry(4000, 16, seeds=(42,), algorithms=("single",))
        perball = next(r for r in records if r.mode == "perball")
        direct = repro.allocate("single", 4000, 16, seed=42, mode="perball")
        assert perball.max_load == direct.max_load

    def test_bench_json_output(self, tmp_path, capsys):
        import json

        from repro.__main__ import main

        path = tmp_path / "bench.json"
        assert main(
            ["bench", "--m", "2000", "--n", "16",
             "--algorithms", "single", "--json", str(path)]
        ) == 0
        records = json.loads(path.read_text())
        assert {r["algorithm"] for r in records} == {"single"}
        assert all(r["seconds_mean"] > 0 for r in records)

    def test_benchmark_registry_records(self):
        from repro.api import benchmark_registry

        records = benchmark_registry(
            2000, 16, seeds=(0, 1), algorithms=("heavy",)
        )
        modes = {r.mode for r in records}
        assert modes == {"perball", "aggregate"}
        for r in records:
            assert r.seeds == 2
            assert r.m == 2000 and r.n == 16
            assert r.balls_per_sec > 0

    def test_benchmark_engine_reference(self):
        from repro.api import benchmark_engine_reference

        rec = benchmark_engine_reference(500, 8, seeds=(0,))
        assert rec.mode == "engine"
        assert rec.seconds_mean > 0


class TestCapabilityNotes:
    """Error messages list capable algorithms through one shared
    helper, so dispatch and dynamic errors never drift apart."""

    def test_capable_allocators_matches_registry(self):
        from repro.api import capable_allocators, list_allocators

        assert capable_allocators("workload_capable") == [
            s.name for s in list_allocators() if s.workload_capable
        ]
        assert capable_allocators("dynamic_capable") == [
            s.name for s in list_allocators() if s.dynamic_capable
        ]

    def test_capability_note_format(self):
        from repro.api import capability_note

        note = capability_note("workload_capable", ["a", "b"])
        assert note == "workload-capable allocators: a, b"
        assert capability_note("dynamic_capable", ["x"]).startswith(
            "dynamic-capable allocators:"
        )

    def test_dispatch_error_carries_note(self):
        from repro.api import capability_note

        with pytest.raises(ValueError) as err:
            allocate("greedy", 1000, 64, seed=1, workload="zipf:1.1")
        assert capability_note("workload_capable") in str(err.value)

    def test_dynamic_resolution_error_carries_note(self):
        from repro.api import capability_note
        from repro.dynamic import run_dynamic

        with pytest.raises(ValueError) as err:
            run_dynamic("greedy", 1000, 64, seed=1, epochs=1)
        assert capability_note("dynamic_capable") in str(err.value)

    def test_dynamic_weighted_rejection_lists_capable(self):
        from repro.api import capability_note
        from repro.dynamic import run_dynamic
        from repro.workloads import WorkloadError

        with pytest.raises(WorkloadError) as err:
            run_dynamic(
                "heavy", 1000, 64, seed=1, epochs=1, workload="geomw:0.5"
            )
        message = str(err.value)
        assert "repro.allocate()" in message
        assert capability_note("workload_capable") in message

    def test_dispatch_and_dynamic_use_identical_suffix(self):
        from repro.api import capability_note
        from repro.dynamic import run_dynamic
        from repro.workloads import WorkloadError

        with pytest.raises(ValueError) as dispatch_err:
            allocate("batched", 1000, 64, seed=1, workload="zipf:1.1")
        with pytest.raises(WorkloadError) as dynamic_err:
            run_dynamic(
                "heavy", 1000, 64, seed=1, epochs=1, workload="geomw:0.5"
            )
        suffix = capability_note("workload_capable")
        assert str(dispatch_err.value).endswith(suffix)
        assert str(dynamic_err.value).endswith(suffix)
