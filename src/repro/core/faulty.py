"""Fault injection: the threshold algorithm under crashes and message loss.

The paper's model is reliable and synchronous.  A natural robustness
question for a downstream user — and a stress test of the *schedule's*
self-stabilizing structure — is what happens when

* **balls crash**: an unallocated ball vanishes with probability
  ``crash_prob`` at the start of each round (its job is gone; the
  allocation of the survivors should be unaffected), and
* **messages are lost**: each request is dropped with probability
  ``loss_prob`` (the ball just retries next round), and each accept is
  dropped with probability ``loss_prob`` — the insidious case, because
  the bin has *reserved capacity for a ball that never learns of it*
  (a "ghost" slot that is never revoked within the protocol).

Why the schedule tolerates this: thresholds ``T_i`` depend only on the
round index, and the estimate recursion m̃ is an *upper* bound on the
surviving ball count under faults, so capacity stays ahead of demand;
ghost slots waste at most a ``loss_prob`` fraction of each round's
capacity, which the next round's fresh capacity covers.  The measured
effect (tests + experiment) is a modest increase in rounds and a gap
that grows with ``loss_prob`` but stays far below the naive baseline.

This module is an extension beyond the paper (documented as such);
``crash_prob = loss_prob = 0`` reproduces ``run_heavy`` exactly in
distribution.

Beyond the one-shot ``run_heavy_faulty``, the module also owns
:class:`FaultModel` — the declarative fault description the *dynamic*
stack threads through ``repro.run_dynamic(fault_model=...)`` and
``repro.AllocatorService(fault_model=...)``: bins failing and
recovering between epochs (failed bins quarantined from new
placements) and per-ack message loss (the same ghost-slot semantics
as above, at epoch granularity).  See :mod:`repro.dynamic.faults` for
the epoch-level engine and ``docs/dynamic.md`` for semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.api.spec import register_allocator
from repro.core.thresholds import PaperSchedule, ThresholdSchedule
from repro.fastpath.roundstate import AcceptDecision, RoundState
from repro.light.virtual import run_light_on_virtual_bins
from repro.result import AllocationResult
from repro.utils.seeding import RngFactory
from repro.utils.validation import check_probability, ensure_m_n
from repro.workloads import bind_workload

__all__ = ["FaultModel", "parse_faults", "run_heavy_faulty"]


@dataclass(frozen=True)
class FaultModel:
    """A declarative fault regime for the dynamic/service stack.

    Attributes
    ----------
    bin_fail_prob:
        Per-epoch probability that each currently healthy bin fails.
        A failed bin is *quarantined*: it receives no new placements
        (its residents survive — a cordoned bin still serves what it
        holds), so the survivors absorb its traffic share and the gap
        inflates accordingly.
    bin_recover_prob:
        Per-epoch probability that each currently failed bin recovers
        (re-enters the placement pool the same epoch).
    loss_prob:
        Per-ball probability that a placement *ack* is lost.  The bin
        keeps the reserved slot as a ghost for the rest of the epoch
        (it cannot distinguish a lost ack from a silent ball — the
        ``run_heavy_faulty`` semantics at epoch granularity) while the
        ball retries against the ghost-inflated loads.  Ghost
        reservations expire at the epoch boundary.
    max_failed_frac:
        Hard cap on the fraction of simultaneously failed bins; fail
        draws beyond it are suppressed (at least one bin always stays
        alive), so a placement target always exists.

    The all-zero model is *bitwise-identical* to ``fault_model=None``:
    every fault draw is gated on its probability being positive, so a
    zero-probability regime consumes no randomness (pinned by the
    adversarial determinism tests).
    """

    bin_fail_prob: float = 0.0
    bin_recover_prob: float = 0.0
    loss_prob: float = 0.0
    max_failed_frac: float = 0.5

    def __post_init__(self) -> None:
        check_probability(self.bin_fail_prob, "bin_fail_prob")
        check_probability(self.bin_recover_prob, "bin_recover_prob")
        check_probability(self.loss_prob, "loss_prob")
        if not (0.0 <= self.max_failed_frac < 1.0):
            raise ValueError(
                f"max_failed_frac must lie in [0, 1), got "
                f"{self.max_failed_frac}"
            )

    @property
    def is_null(self) -> bool:
        """True when the model injects nothing (≡ ``fault_model=None``)."""
        return (
            self.bin_fail_prob == 0.0
            and self.bin_recover_prob == 0.0
            and self.loss_prob == 0.0
        )

    def describe(self) -> str:
        parts = []
        if self.bin_fail_prob:
            parts.append(
                f"bin_fail={self.bin_fail_prob:g}"
                f"/recover={self.bin_recover_prob:g}"
            )
        if self.loss_prob:
            parts.append(f"loss={self.loss_prob:g}")
        return "+".join(parts) if parts else "none"

    def to_dict(self) -> dict:
        return {
            "bin_fail_prob": self.bin_fail_prob,
            "bin_recover_prob": self.bin_recover_prob,
            "loss_prob": self.loss_prob,
            "max_failed_frac": self.max_failed_frac,
        }


#: CLI spelling aliases for :func:`parse_faults` keys.
_FAULT_KEYS = {
    "bin_fail": "bin_fail_prob",
    "fail": "bin_fail_prob",
    "bin_fail_prob": "bin_fail_prob",
    "recover": "bin_recover_prob",
    "bin_recover": "bin_recover_prob",
    "bin_recover_prob": "bin_recover_prob",
    "loss": "loss_prob",
    "loss_prob": "loss_prob",
    "max_failed": "max_failed_frac",
    "max_failed_frac": "max_failed_frac",
}


def parse_faults(text: Optional[str]) -> Optional[FaultModel]:
    """Parse a ``key=value`` fault spec string into a :class:`FaultModel`.

    Grammar: comma-separated ``key=float`` pairs, e.g.
    ``"bin_fail=0.02,recover=0.5,loss=0.05"``.  Accepted keys:
    ``bin_fail``/``fail``, ``recover``, ``loss``, ``max_failed`` (plus
    their full field-name spellings).  ``None``, ``""`` and ``"none"``
    mean no fault injection.
    """
    if text is None:
        return None
    text = text.strip()
    if not text or text.lower() == "none":
        return None
    kwargs: dict = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(
                f"bad fault spec part {part!r}: expected key=value "
                f"(keys: {', '.join(sorted(set(_FAULT_KEYS)))})"
            )
        key, _, value = part.partition("=")
        field = _FAULT_KEYS.get(key.strip().lower())
        if field is None:
            raise ValueError(
                f"unknown fault key {key.strip()!r}; expected one of "
                f"{', '.join(sorted(set(_FAULT_KEYS)))}"
            )
        try:
            kwargs[field] = float(value)
        except ValueError:
            raise ValueError(
                f"bad fault value {value!r} for key {key.strip()!r}"
            ) from None
    return FaultModel(**kwargs)


@register_allocator(
    "faulty",
    summary="A_heavy phase 1 under ball crashes and message loss",
    paper_ref="extension (experiment A4)",
    aliases=("heavy_faulty",),
    fault_tolerant=True,
    kernel_backed=True,
    workload_capable=True,
)
def run_heavy_faulty(
    m: int,
    n: int,
    *,
    seed=None,
    crash_prob: float = 0.0,
    loss_prob: float = 0.0,
    schedule: Optional[ThresholdSchedule] = None,
    stop_factor: float = 2.0,
    handoff: bool = True,
    extra_rounds: int = 8,
    workload=None,
) -> AllocationResult:
    """Run phase 1 under fault injection, then a reliable handoff.

    Parameters
    ----------
    m, n:
        Instance size (``m >= n``).
    crash_prob:
        Per-round probability that an unallocated ball disappears.
        Crashed balls are reported via ``extra["crashed"]`` and excluded
        from the allocation (``result.m`` still reports the original
        ``m``; ``unallocated`` counts only surviving stragglers).
    loss_prob:
        Per-message drop probability, applied independently to requests
        and accepts.
    schedule:
        Threshold schedule (default: the paper's).
    extra_rounds:
        Additional threshold rounds granted beyond the schedule's phase
        1 (faults slow progress; the schedule is extended by holding the
        final threshold).
    handoff:
        Run the (reliable) ``A_light`` phase on the stragglers.

    workload:
        Optional :class:`repro.workloads.Workload` (or spec string):
        skewed contact draws, per-bin thresholds scaled by the capacity
        profile, weighted-load tracking.  The fault machinery composes
        with it unchanged (crashes and losses act on balls/messages,
        not on the scenario).  Uniform workloads are
        bitwise-identical to the historical run.

    Notes
    -----
    Ghost slots: a lost accept leaves the bin's capacity consumed
    (``ghost_loads``) while the ball retries.  Final loads exclude
    ghosts — a ghost is an empty reservation, not a ball — but
    capacity checks use ``loads + ghosts``, exactly what a real bin
    (which cannot distinguish a lost accept from a silent ball) would
    enforce.
    """
    m, n = ensure_m_n(m, n, require_heavy=True)
    crash_prob = check_probability(crash_prob, "crash_prob")
    loss_prob = check_probability(loss_prob, "loss_prob")
    factory = RngFactory(seed)
    wl = bind_workload(workload, m, n, factory)
    rng = factory.stream("faulty", "choices")
    fault_rng = factory.stream("faulty", "faults")

    sched = schedule or PaperSchedule(m, n, stop_factor=stop_factor)
    planned = sched.phase1_rounds()
    base_rounds = planned if planned is not None else 64
    rounds_budget = base_rounds + extra_rounds

    state = RoundState(m, n, weights=wl.weights)
    ghosts = np.zeros(n, dtype=np.int64)
    crashed = 0

    while state.rounds < rounds_budget and state.active_count > 0:
        # Crashes: balls vanish before sending (protocol-level policy on
        # the shared state's public active set).
        if crash_prob > 0 and state.active_count:
            alive = fault_rng.random(state.active_count) >= crash_prob
            crashed += int(alive.size - alive.sum())
            state.active = state.active[alive]
        u = state.active_count
        if u == 0:
            break
        # Thresholds: schedule value, held at its last level past the
        # planned horizon (the bins keep their final capacity open).
        threshold = sched.threshold(min(state.rounds, base_rounds - 1))
        batch = state.sample_contacts(rng, pvals=wl.pvals)
        # Request loss: only delivered requests reach their bins (and
        # only they are charged as sent).
        if loss_prob > 0:
            delivered = fault_rng.random(u) >= loss_prob
        else:
            delivered = np.ones(u, dtype=bool)
        batch.requests_sent = int(delivered.sum())
        # Capacity: a real bin cannot distinguish a lost accept from a
        # silent ball, so its residual counts ghosts as occupied.
        capacity = np.maximum(wl.capacities(threshold) - state.loads - ghosts, 0)
        decision = state.group_and_accept(
            batch,
            capacity,
            factory.stream("faulty", "acc", state.rounds),
            delivered=delivered,
        )
        accepted = decision.accepted
        # Accept loss: the bin reserved the slot, the ball never hears.
        if loss_prob > 0 and accepted.any():
            heard = fault_rng.random(int(accepted.sum())) >= loss_prob
            acc_idx = np.flatnonzero(accepted)
            ghost_idx = acc_idx[~heard]
            np.add.at(ghosts, batch.choices[ghost_idx], 1)
            accepted[ghost_idx] = False
        state.commit_and_revoke(
            batch,
            AcceptDecision(accepts_sent=int(accepted.sum()), accepted=accepted),
            threshold=threshold,
        )

    phase1_rounds = state.rounds
    remaining = state.active_count
    loads = state.loads
    metrics = state.metrics
    total_messages = state.total_messages
    extra = {
        "crash_prob": crash_prob,
        "loss_prob": loss_prob,
        "crashed": crashed,
        "ghost_slots": int(ghosts.sum()),
        "phase1_rounds": phase1_rounds,
        "phase1_remaining": remaining,
        "phase2_rounds": 0,
    }
    rounds = phase1_rounds
    unallocated = remaining
    weighted_loads = state.weighted_loads

    if handoff and remaining > 0:
        real_loads, light, vmap = run_light_on_virtual_bins(
            remaining, n, seed=factory.stream("light")
        )
        loads += real_loads
        if weighted_loads is not None:
            np.add.at(
                weighted_loads,
                vmap.to_real(light.assignment),
                wl.weights[state.active],
            )
        rounds += light.rounds
        total_messages += light.total_messages
        extra["phase2_rounds"] = light.rounds
        unallocated = 0

    workload_record = wl.extra_record(weighted_loads)
    if workload_record is not None:
        extra["workload"] = workload_record

    # ``unallocated`` counts surviving stragglers plus crashed balls
    # (both are balls of the original m not present in any bin); a run
    # is complete only when every original ball landed.
    not_placed = unallocated + crashed
    return AllocationResult(
        algorithm=f"heavy-faulty[crash={crash_prob},loss={loss_prob}]",
        m=m,
        n=n,
        loads=loads,
        rounds=rounds,
        metrics=metrics,
        total_messages=total_messages,
        complete=not_placed == 0,
        unallocated=not_placed,
        seed_entropy=factory.root_entropy,
        extra=extra,
    )
