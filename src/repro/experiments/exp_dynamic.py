"""Experiment D1: amortized cost of incremental rebalancing under churn.

The dynamic subsystem's headline claim: when balls churn (depart and
arrive) epoch by epoch, re-establishing the load guarantee
*incrementally* — only the arriving cohort runs through the round
kernels, against the residents' loads — costs messages proportional
to the **churn**, while the full-rerun oracle pays the one-shot cost
of the whole **population** every epoch.  D1 sweeps the churn rate
and measures steady-state messages per epoch for both strategies: the
incremental curve must track the churn (double the churn, roughly
double the cost) while the oracle's stays flat at the population
cost, with both keeping the O(1) steady-state gap.
"""

from __future__ import annotations

from repro.dynamic import run_dynamic
from repro.experiments.plotting import ascii_chart
from repro.experiments.report import ExperimentReport

__all__ = ["exp_d1"]


def exp_d1(scale: str = "quick", seed: int = 20190416) -> ExperimentReport:
    """D1 — messages/epoch of incremental vs full-rerun across churn."""
    report = ExperimentReport(
        exp_id="D1",
        title="Amortized rebalance cost vs churn rate",
        claim="extension: incremental rebalancing on the shared round "
        "kernels costs messages proportional to the churn (the arriving "
        "cohort), while a full re-run pays the population's one-shot "
        "cost every epoch; both hold the steady-state gap at O(1)",
        columns=[
            "churn",
            "inc msg/ep",
            "full msg/ep",
            "advantage",
            "inc moved/ep",
            "inc gap",
            "full gap",
        ],
    )
    if scale == "quick":
        m, n, epochs = 20_000, 64, 6
        churns = [0.05, 0.1, 0.2]
    else:
        m, n, epochs = 100_000, 256, 16
        churns = [0.02, 0.05, 0.1, 0.2, 0.5]

    inc_msgs, full_msgs, advantages = [], [], []
    ok = True
    for churn in churns:
        inc = run_dynamic(
            "heavy", m, n, seed=seed, epochs=epochs, churn=churn,
            rebalance="incremental",
        )
        full = run_dynamic(
            "heavy", m, n, seed=seed, epochs=epochs, churn=churn,
            rebalance="full_rerun",
        )
        inc_per = inc.churn_messages / epochs
        full_per = full.churn_messages / epochs
        advantage = full_per / inc_per
        inc_gap = float(inc.gaps[1:].mean())
        full_gap = float(full.gaps[1:].mean())
        report.add_row(
            churn,
            inc_per,
            full_per,
            advantage,
            float(inc.moved[1:].mean()),
            inc_gap,
            full_gap,
        )
        inc_msgs.append(inc_per)
        full_msgs.append(full_per)
        advantages.append(advantage)
        # Both strategies must keep the steady-state gap O(1), and
        # every run must place every ball.
        ok = ok and inc.complete and full.complete
        ok = ok and inc_gap <= 8.0 and full_gap <= 8.0

    # Incremental cost tracks the churn: strictly increasing in the
    # churn rate, and the advantage over the oracle shrinks as churn
    # grows (at 100% churn the two coincide by construction).
    ok = ok and all(
        a < b for a, b in zip(inc_msgs, inc_msgs[1:])
    )
    ok = ok and advantages[0] >= 2 * advantages[-1]
    # The oracle's cost is set by the population, not the churn: flat
    # within 35% across the sweep.
    ok = ok and max(full_msgs) <= 1.35 * min(full_msgs)
    # Material advantage at the headline 10% churn point.
    idx = churns.index(0.1)
    ok = ok and advantages[idx] >= 3.0

    report.charts.append(
        ascii_chart(
            churns,
            {"incremental": inc_msgs, "full_rerun": full_msgs},
            title="messages per churn epoch vs churn rate",
            x_label="churn",
        )
    )
    report.passed = ok
    report.notes.append(
        "incremental epochs place only the arriving cohort against the "
        "residents' loads (RoundState initial_loads + schedule "
        "fast-forward + settle rounds), so their message cost scales "
        "with churn * m; the full re-run re-places all m balls."
    )
    report.notes.append(
        "aggregate-granularity placements compress the wall-clock "
        "advantage (O(n) per round for both strategies) but the "
        "message advantage is granularity-independent; "
        "BENCH_dynamic.json records the per-ball wall-clock trajectory."
    )
    return report
