"""Property-based tests (hypothesis) on the core invariants.

Each property is an invariant the paper's model demands of *any*
allocation, checked over randomly drawn instances:

* conservation: loads sum to the number of allocated balls;
* cap-respect: accept kernels never exceed capacity;
* schedule monotonicity and integrality;
* determinism: equal seeds produce equal outcomes;
* simulation faithfulness (Lemma 2) over random thresholds.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import PaperSchedule, run_heavy, run_trivial
from repro.core.asymmetric import superbin_blocks
from repro.fastpath.sampling import grouped_accept, multinomial_occupancy
from repro.light import run_light
from repro.lowerbound.adversary import uniform_adversary
from repro.lowerbound.simulate_degree import (
    run_degree_d_direct,
    run_degree_d_simulated,
)

COMMON = settings(
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)


@COMMON
@given(
    n=st.integers(2, 128),
    ratio=st.integers(1, 64),
    seed=st.integers(0, 2**31),
)
def test_heavy_conservation_and_cap(n, ratio, seed):
    m = n * ratio
    res = run_heavy(m, n, seed=seed)
    assert res.complete
    assert res.loads.sum() == m
    assert res.loads.min() >= 0
    # O(1) gap with a generous constant (small-n instances are noisier;
    # the virtual-bin factor contributes up to 2g).
    assert res.gap <= 14.0


@COMMON
@given(
    n=st.integers(1, 64),
    m=st.integers(1, 4000),
    seed=st.integers(0, 2**31),
)
def test_trivial_always_perfect(n, m, seed):
    res = run_trivial(m, n, seed=seed)
    assert res.complete
    assert res.max_load == -(-m // n)  # ceil
    assert res.rounds <= n


@COMMON
@given(
    n_balls=st.integers(0, 500),
    n_bins=st.integers(1, 500),
    seed=st.integers(0, 2**31),
)
def test_light_never_exceeds_capacity(n_balls, n_bins, seed):
    if n_balls > 2 * n_bins:
        return  # outside the protocol's contract
    out = run_light(n_balls, n_bins, seed=seed)
    assert out.loads.max(initial=0) <= 2
    assert out.loads.sum() == n_balls


@COMMON
@given(
    k=st.integers(0, 2000),
    n=st.integers(1, 50),
    cap=st.integers(0, 100),
    seed=st.integers(0, 2**31),
)
def test_grouped_accept_cap_invariant(k, n, cap, seed):
    rng = np.random.default_rng(seed)
    choices = rng.integers(0, n, size=k)
    capacity = rng.integers(0, cap + 1, size=n)
    mask = grouped_accept(choices, capacity, rng)
    per_bin = np.bincount(choices[mask], minlength=n)
    assert (per_bin <= capacity).all()
    # accepted count is maximal: a bin with requests and spare capacity
    # must accept min(requests, capacity).
    req = np.bincount(choices, minlength=n)
    assert (per_bin == np.minimum(req, capacity)).all()


@COMMON
@given(
    k=st.integers(0, 10**6),
    n=st.integers(1, 64),
    seed=st.integers(0, 2**31),
)
def test_multinomial_occupancy_conserves(k, n, seed):
    rng = np.random.default_rng(seed)
    counts = multinomial_occupancy(k, n, rng)
    assert counts.sum() == k
    assert counts.min() >= 0


@COMMON
@given(
    n=st.integers(2, 256),
    exponent=st.integers(1, 40),
)
def test_paper_schedule_invariants(n, exponent):
    m = n * 2**exponent
    sched = PaperSchedule(m, n)
    rounds = sched.phase1_rounds()
    prev = -1
    for i in range(rounds):
        t = sched.threshold(i)
        assert isinstance(t, int)
        assert t >= prev  # monotone
        assert t <= m // n  # never above the mean
        prev = t
    # estimates decrease to the stop region
    assert sched.estimate(rounds) <= 2 * n


@COMMON
@given(
    n=st.integers(1, 200),
    n_r=st.integers(1, 200),
)
def test_superbin_blocks_partition(n, n_r):
    if n_r > n:
        return
    blocks = superbin_blocks(n, n_r)
    sizes = np.diff(blocks)
    assert sizes.sum() == n
    assert sizes.min() >= 1
    assert sizes.max() - sizes.min() <= 1


@COMMON
@given(
    seed=st.integers(0, 2**31),
    d=st.integers(1, 3),
)
def test_lemma2_simulation_property(seed, d):
    """Random-seeded Lemma 2 equivalence over a fixed schedule."""
    thresholds = [4, 6, 7, 9]
    direct = run_degree_d_direct(512, 64, d, thresholds, seed=seed)
    sim = run_degree_d_simulated(512, 64, d, thresholds, seed=seed)
    assert np.array_equal(direct.loads, sim.loads)
    assert sim.rounds == d * direct.rounds


@COMMON
@given(
    m_balls=st.integers(100, 10**5),
    n=st.integers(2, 128),
    extra=st.integers(0, 500),
    seed=st.integers(0, 2**31),
)
def test_adversary_budget_property(m_balls, n, extra, seed):
    rng = np.random.default_rng(seed)
    thresholds = uniform_adversary.thresholds(m_balls, n, extra, rng)
    assert thresholds.sum() == m_balls + extra
    assert thresholds.min() >= 0


@COMMON
@given(seed=st.integers(0, 2**31))
def test_determinism_property(seed):
    a = run_heavy(20_000, 64, seed=seed)
    b = run_heavy(20_000, 64, seed=seed)
    assert np.array_equal(a.loads, b.loads)
    assert a.total_messages == b.total_messages
    assert a.rounds == b.rounds


@COMMON
@given(
    n=st.integers(4, 128),
    ratio=st.integers(2, 256),
    seed=st.integers(0, 2**31),
)
def test_asymmetric_invariants(n, ratio, seed):
    from repro.core import run_asymmetric

    m = n * ratio
    res = run_asymmetric(m, n, seed=seed)
    assert res.complete
    assert res.loads.sum() == m
    # O(1) rounds with an absolute ceiling, O(1)-ish gap with slack for
    # tiny instances where log n terms dominate.
    assert res.rounds <= 10
    assert res.gap <= 6 + 2 * np.log(n)


@COMMON
@given(
    seed=st.integers(0, 2**31),
    crash=st.floats(0.0, 0.2),
    loss=st.floats(0.0, 0.3),
)
def test_faulty_conservation_property(seed, crash, loss):
    from repro.core import run_heavy_faulty

    m, n = 10_000, 64
    res = run_heavy_faulty(
        m, n, seed=seed, crash_prob=crash, loss_prob=loss
    )
    # Conservation under faults: placed + crashed + stragglers == m,
    # and every surviving ball is placed at most once.
    assert res.loads.sum() + res.unallocated == m
    assert res.loads.min() >= 0
    assert res.extra["crashed"] <= res.unallocated


@COMMON
@given(
    d=st.integers(1, 4),
    seed=st.integers(0, 2**31),
)
def test_multicontact_invariants(d, seed):
    from repro.core import run_heavy_multicontact

    m, n = 8192, 64
    res = run_heavy_multicontact(m, n, d, seed=seed)
    assert res.complete
    assert res.loads.sum() == m
    assert res.gap <= 14.0


# -- trial-batched kernel invariants ------------------------------------


def _aggregate_loop(state, rng_or_rngs, cap, max_rounds=60):
    """Drive an aggregate RoundState (scalar or batched) to completion."""
    while state.any_active and state.rounds < max_rounds:
        batch = state.sample_contacts(rng_or_rngs)
        decision = state.group_and_accept(batch, cap - state.loads)
        state.commit_and_revoke(batch, decision, threshold=None)
    return state


@COMMON
@given(
    n=st.integers(2, 96),
    ratio=st.integers(1, 40),
    slack=st.integers(1, 8),
    seed=st.integers(0, 2**31),
)
def test_trial_axis_t1_batched_is_bitwise_unbatched(n, ratio, slack, seed):
    """A trials=1 batched state is the scalar aggregate state, bitwise."""
    from repro.fastpath.roundstate import RoundState

    m = n * ratio
    cap = np.full(n, ratio + slack, dtype=np.int64)
    root = np.random.SeedSequence(seed)
    scalar = _aggregate_loop(
        RoundState(m, n, granularity="aggregate"),
        np.random.default_rng(root),
        cap,
    )
    batched = _aggregate_loop(
        RoundState(m, n, granularity="aggregate", trials=1),
        [np.random.default_rng(root)],
        cap,
    )
    assert np.array_equal(batched.loads[0], scalar.loads)
    assert batched.trial_rounds[0] == scalar.rounds
    assert batched.total_messages[0] == scalar.total_messages
    assert len(batched.trial_metrics[0].rounds) == len(scalar.metrics.rounds)


@COMMON
@given(
    n=st.integers(2, 64),
    ratio=st.integers(1, 30),
    seed=st.integers(0, 2**31),
)
def test_trial_permutation_invariance(n, ratio, seed):
    """Permuting the per-trial generators permutes the result rows."""
    from repro.fastpath.roundstate import RoundState

    m = n * ratio
    trials = 5
    cap = np.full(n, ratio + 1, dtype=np.int64)
    children = np.random.SeedSequence(seed).spawn(trials)
    perm = np.random.default_rng(seed).permutation(trials)

    direct = _aggregate_loop(
        RoundState(m, n, granularity="aggregate", trials=trials),
        [np.random.default_rng(c) for c in children],
        cap,
    )
    permuted = _aggregate_loop(
        RoundState(m, n, granularity="aggregate", trials=trials),
        [np.random.default_rng(children[p]) for p in perm],
        cap,
    )
    assert np.array_equal(permuted.loads, direct.loads[perm])
    assert np.array_equal(permuted.trial_rounds, direct.trial_rounds[perm])
    assert np.array_equal(
        permuted.total_messages, direct.total_messages[perm]
    )


@COMMON
@given(
    n=st.integers(2, 48),
    ratio=st.integers(2, 24),
    seed=st.integers(0, 2**31),
)
def test_masked_trial_isolation(n, ratio, seed):
    """A finished trial's state never changes again, and its generator
    is never consumed again."""
    from repro.fastpath.roundstate import RoundState

    m = n * ratio
    trials = 4
    cap = np.full(n, ratio + 1, dtype=np.int64)
    children = np.random.SeedSequence(seed).spawn(trials)
    rngs = [np.random.default_rng(c) for c in children]
    state = RoundState(m, n, granularity="aggregate", trials=trials)
    frozen: dict[int, tuple] = {}
    while state.any_active and state.rounds < 60:
        batch = state.sample_contacts(rngs)
        decision = state.group_and_accept(batch, cap - state.loads)
        state.commit_and_revoke(batch, decision, threshold=None)
        for t in range(trials):
            if t in frozen:
                loads, msgs, rounds, n_rows = frozen[t]
                assert np.array_equal(state.loads[t], loads), t
                assert state.total_messages[t] == msgs
                assert state.trial_rounds[t] == rounds
                assert len(state.trial_metrics[t].rounds) == n_rows
            elif state.active_counts[t] == 0:
                frozen[t] = (
                    state.loads[t].copy(),
                    int(state.total_messages[t]),
                    int(state.trial_rounds[t]),
                    len(state.trial_metrics[t].rounds),
                )
    # Generator isolation: each trial's stream advanced exactly as far
    # as a solo run of that trial would have — the next draw matches.
    for t in range(trials):
        solo_rng = np.random.default_rng(children[t])
        solo = _aggregate_loop(
            RoundState(m, n, granularity="aggregate"), solo_rng, cap
        )
        assert np.array_equal(state.loads[t], solo.loads)
        assert rngs[t].integers(1 << 30) == solo_rng.integers(1 << 30), t


@COMMON
@given(
    k=st.integers(0, 3000),
    n=st.integers(1, 128),
    trials=st.integers(1, 6),
    seed=st.integers(0, 2**31),
)
def test_multinomial_occupancy_batched_rowwise_bitwise(k, n, trials, seed):
    from repro.fastpath.sampling import (
        multinomial_occupancy,
        multinomial_occupancy_batched,
    )

    children = np.random.SeedSequence(seed).spawn(trials)
    ks = np.full(trials, k, dtype=np.int64)
    counts = multinomial_occupancy_batched(
        ks, n, [np.random.default_rng(c) for c in children]
    )
    assert counts.shape == (trials, n)
    assert np.all(counts.sum(axis=1) == k)
    for t in range(trials):
        solo = multinomial_occupancy(k, n, np.random.default_rng(children[t]))
        assert np.array_equal(counts[t], solo)


@COMMON
@given(
    k=st.integers(1, 2000),
    n=st.integers(1, 64),
    cap=st.integers(1, 50),
    seed=st.integers(0, 2**31),
)
def test_grouped_accept_with_priorities_matches_grouped_accept(
    k, n, cap, seed
):
    from repro.fastpath.sampling import (
        grouped_accept,
        grouped_accept_with_priorities,
    )

    rng = np.random.default_rng(seed)
    choices = rng.integers(0, n, size=k, dtype=np.int64)
    capacity = rng.integers(0, cap, size=n, dtype=np.int64)
    if capacity.max(initial=0) == 0:
        capacity[0] = 1
    draw_rng = np.random.default_rng(seed + 1)
    expected = grouped_accept(choices, capacity, draw_rng)
    priorities = np.random.default_rng(seed + 1).random(k)
    got = grouped_accept_with_priorities(choices, capacity, priorities)
    assert np.array_equal(got, expected)


# -- residual-load (dynamic) kernel invariants ---------------------------
#
# These sit alongside the masked-trial isolation tests because they pin
# the same kind of contract: state the kernels must NOT touch (finished
# trials there, saturated schedules here) consumes no randomness.


class _TwoPhaseSchedule:
    """Test schedule: ``prefix`` rounds at ``low``, then ``high``."""

    def __init__(self, prefix: int, low: int, high: int, rounds: int):
        self.prefix, self.low, self.high = prefix, low, high
        self._rounds = rounds

    def threshold(self, i: int) -> int:
        return self.low if i < self.prefix else self.high

    def phase1_rounds(self) -> int:
        return self._rounds


@COMMON
@given(
    n=st.integers(2, 48),
    ratio=st.integers(1, 16),
    seed=st.integers(0, 2**31),
)
def test_saturated_initial_loads_terminate_with_zero_draws(n, ratio, seed):
    """All bins pre-saturated via initial_loads: the threshold protocol
    must terminate immediately — zero executed rounds, zero messages,
    zero RNG draws (regression for the dynamic incremental loop)."""
    from repro.core.heavy import run_threshold_protocol
    from repro.utils.seeding import RngFactory

    m = n * ratio
    threshold = 5
    saturated = np.full(n, threshold + 3, dtype=np.int64)
    outcome = run_threshold_protocol(
        m,
        n,
        _TwoPhaseSchedule(4, threshold, threshold, 4),
        rng_factory=RngFactory(seed),
        mode="aggregate",
        initial_loads=saturated,
        skip_saturated_rounds=True,
    )
    assert outcome.rounds == 0
    assert outcome.total_messages == 0
    assert outcome.remaining == m
    assert outcome.thresholds == []
    assert len(outcome.metrics.rounds) == 0
    assert np.array_equal(outcome.loads, saturated)


@COMMON
@given(
    n=st.integers(2, 48),
    ratio=st.integers(1, 16),
    prefix=st.integers(1, 5),
    seed=st.integers(0, 2**31),
)
def test_saturated_prefix_consumes_no_stream(n, ratio, prefix, seed):
    """Skipped saturated rounds draw nothing: a schedule with a
    saturated prefix is bitwise-identical to one without it."""
    from repro.core.heavy import run_threshold_protocol
    from repro.utils.seeding import RngFactory

    m = n * ratio
    base = np.full(n, 3, dtype=np.int64)
    high = 3 + 2 * ratio + 4
    with_prefix = run_threshold_protocol(
        m,
        n,
        _TwoPhaseSchedule(prefix, 2, high, prefix + 6),
        rng_factory=RngFactory(seed),
        mode="aggregate",
        initial_loads=base,
        skip_saturated_rounds=True,
    )
    without = run_threshold_protocol(
        m,
        n,
        _TwoPhaseSchedule(0, 2, high, 6),
        rng_factory=RngFactory(seed),
        mode="aggregate",
        initial_loads=base,
        skip_saturated_rounds=True,
    )
    assert np.array_equal(with_prefix.loads, without.loads)
    assert with_prefix.rounds == without.rounds
    assert with_prefix.total_messages == without.total_messages


@COMMON
@given(
    n=st.integers(2, 64),
    ratio=st.integers(1, 30),
    residual=st.integers(0, 20),
    seed=st.integers(0, 2**31),
)
def test_initial_loads_trial_batched_matches_scalar(n, ratio, residual, seed):
    """initial_loads composes with trials=T: a batched trial with a
    residual occupancy is bitwise the scalar run with that residual."""
    from repro.fastpath.roundstate import RoundState

    m = n * ratio
    rng = np.random.default_rng(seed)
    initial = rng.integers(0, residual + 1, size=n).astype(np.int64)
    cap = np.full(n, int(initial.max()) + ratio + 1, dtype=np.int64)
    root = np.random.SeedSequence(seed)
    scalar = _aggregate_loop(
        RoundState(
            m, n, granularity="aggregate", initial_loads=initial
        ),
        np.random.default_rng(root),
        cap,
    )
    batched = _aggregate_loop(
        RoundState(
            m,
            n,
            granularity="aggregate",
            trials=1,
            initial_loads=initial,
        ),
        [np.random.default_rng(root)],
        cap,
    )
    assert np.array_equal(batched.loads[0], scalar.loads)
    assert batched.total_messages[0] == scalar.total_messages
    assert scalar.loads.sum() == initial.sum() + m
