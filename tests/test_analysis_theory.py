"""Tests for repro.analysis.theory — the paper's closed-form predictions."""

import math

import pytest

from repro.analysis.theory import (
    expected_max_load_greedy_d,
    expected_max_load_single_choice,
    heavy_phase_round_bound,
    lower_bound_recursion,
    mtilde_schedule,
    predicted_rounds,
    rejection_floor,
    theorem7_t,
    threshold_schedule,
)


class TestSingleChoicePrediction:
    def test_heavy_regime_form(self):
        m, n = 10**6, 10**3
        pred = expected_max_load_single_choice(m, n)
        assert pred == pytest.approx(
            m / n + math.sqrt(2 * (m / n) * math.log(n)), rel=1e-9
        )

    def test_single_bin(self):
        assert expected_max_load_single_choice(50, 1) == 50.0

    def test_gap_grows_with_m(self):
        n = 1000
        gaps = [
            expected_max_load_single_choice(n * r, n) - r
            for r in (16, 256, 4096)
        ]
        assert gaps == sorted(gaps)


class TestGreedyPrediction:
    def test_d1_falls_back(self):
        m, n = 10**5, 100
        assert expected_max_load_greedy_d(m, n, 1) == (
            expected_max_load_single_choice(m, n)
        )

    def test_gap_m_independent(self):
        n = 1024
        g1 = expected_max_load_greedy_d(n * 100, n, 2) - 100
        g2 = expected_max_load_greedy_d(n * 10000, n, 2) - 10000
        assert g1 == pytest.approx(g2)

    def test_larger_d_smaller_gap(self):
        n = 4096
        gaps = [
            expected_max_load_greedy_d(n * 10, n, d) - 10 for d in (2, 3, 4)
        ]
        assert gaps == sorted(gaps, reverse=True)

    def test_invalid_d(self):
        with pytest.raises(ValueError):
            expected_max_load_greedy_d(100, 10, 0)


class TestMtildeSchedule:
    def test_starts_at_m(self):
        assert mtilde_schedule(10**6, 100)[0] == 10**6

    def test_recursion_step(self):
        sched = mtilde_schedule(10**6, 100)
        for a, b in zip(sched, sched[1:]):
            assert b == pytest.approx(a ** (2 / 3) * 100 ** (1 / 3), rel=1e-9)

    def test_closed_form(self):
        m, n = 2**30, 2**10
        sched = mtilde_schedule(m, n)
        for i, v in enumerate(sched):
            e = (2 / 3) ** i
            assert v == pytest.approx(m**e * n ** (1 - e), rel=1e-9)

    def test_terminates_at_2n(self):
        sched = mtilde_schedule(10**9, 1000)
        assert sched[-1] <= 2000
        assert all(v > 2000 for v in sched[:-1])

    def test_max_rounds_cap(self):
        sched = mtilde_schedule(10**9, 10, max_rounds=3)
        assert len(sched) == 4  # m̃_0..m̃_3


class TestThresholdSchedule:
    def test_thresholds_below_mean(self):
        m, n = 10**6, 1000
        for t in threshold_schedule(m, n):
            assert t < m / n

    def test_nondecreasing(self):
        values = threshold_schedule(10**8, 512)
        assert values == sorted(values)

    def test_first_round_form(self):
        m, n = 10**6, 1000
        t0 = threshold_schedule(m, n)[0]
        assert t0 == pytest.approx(m / n - (m / n) ** (2 / 3))


class TestRoundPredictions:
    def test_phase1_grows_like_loglog(self):
        n = 1024
        r1 = heavy_phase_round_bound(n * 2**4, n)
        r2 = heavy_phase_round_bound(n * 2**16, n)
        r3 = heavy_phase_round_bound(n * 2**64, n)
        # doubling the exponent adds ~log_{3/2} 2 ≈ 1.7 rounds per
        # doubling of log: differences must shrink relative to ratio.
        assert r1 < r2 < r3
        assert r3 - r2 <= (r2 - r1) + 6

    def test_predicted_total_includes_logstar(self):
        m, n = 2**20, 2**10
        assert predicted_rounds(m, n) == heavy_phase_round_bound(m, n) + 4 + 2

    def test_m_equals_n(self):
        assert heavy_phase_round_bound(100, 100) == 0


class TestTheorem7Quantities:
    def test_t_definition(self):
        # t = min(ceil(log2 n), ceil(log2(M/n)) + 1)
        assert theorem7_t(2**20, 2**10) == min(10, 11)
        assert theorem7_t(2**13, 2**10) == min(10, 4)

    def test_t_at_least_one(self):
        assert theorem7_t(4, 2) >= 1

    def test_rejection_floor_scales_sqrt(self):
        n = 4096
        f1 = rejection_floor(n * 64, n)
        f2 = rejection_floor(n * 256, n)
        # sqrt(M n) doubles when M quadruples (t shifts slightly).
        assert 1.5 < f2 / f1 < 2.8

    def test_rejection_floor_positive(self):
        assert rejection_floor(10**6, 100) > 0


class TestLowerBoundRecursion:
    def test_starts_at_m(self):
        assert lower_bound_recursion(2**30, 2**10)[0] == 2**30

    def test_closed_form(self):
        # M_0 = m by convention; the induction formula applies for i >= 1.
        m, n = 2**30, 2**10
        series = lower_bound_recursion(m, n)
        ratio = m / n
        for i, v in enumerate(series):
            if i == 0:
                assert v == m
            else:
                assert v == pytest.approx(
                    ratio ** (3.0**-i) * n ** (1 - 3.0**-i), rel=1e-9
                )

    def test_length_is_loglog(self):
        n = 2**10
        l1 = len(lower_bound_recursion(n * 2**8, n))
        l2 = len(lower_bound_recursion(n * 2**64, n))
        assert l1 < l2 <= l1 + 4
