"""Setup shim enabling legacy editable installs (`pip install -e .`)
in environments without the `wheel` package (PEP 660 editable wheels
require it; `setup.py develop` does not)."""
from setuptools import setup

setup()
