"""Vectorized sampling kernels shared by every fast-path protocol.

Four primitives cover all the paper's protocols and their workload
generalizations:

* :func:`sample_uniform_choices` — each of ``k`` requests picks a bin
  uniformly and independently at random (step 1 of every round);
* :func:`sample_choices` — the non-uniform generalization: ``k`` i.i.d.
  bin indices drawn from an arbitrary probability vector ``pvals``
  (inverse-CDF sampling); with ``pvals=None`` it delegates to
  :func:`sample_uniform_choices` and is bitwise-identical to it;
* :func:`multinomial_occupancy` — the aggregate equivalent: per-bin
  request *counts* for ``k`` exchangeable requests, ``O(n)`` memory,
  uniform by default or under any ``pvals``;
* :func:`grouped_accept` — step 2: given flat request targets and
  per-bin residual capacities, select which requests are accepted, each
  bin choosing uniformly at random among its requesters (equivalently:
  arbitrarily under the adversarial port model — uniform is one valid
  adversary, and the protocols' guarantees must and do hold for it).

Trial batching: every kernel also has a form that advances ``T``
independent replications of the same instance in one call —
:func:`multinomial_occupancy_batched` (a ``(T, n)`` occupancy matrix
drawn from per-trial generators) and
:func:`grouped_accept_with_priorities` (the deterministic core of
:func:`grouped_accept`, taking pre-drawn priorities so a caller can
concatenate many trials' requests into one composite-bin sort).  The
batched forms take one generator *per trial* and consume each exactly
as the scalar kernel would, so a batched trial is bitwise-identical to
running that trial alone — the contract the replication engine's
equivalence tests pin down.

Chunked sampling (the 10^8-ball enabler): :func:`fill_choices` and
:func:`fill_priorities` produce exactly the values of
:func:`sample_choices` / ``rng.random(k)`` but write them into a
caller-supplied (usually arena-owned, possibly narrower-dtype) array,
drawing through a bounded temporary tile.  Both rely on the fact that
numpy's ``Generator`` consumes its bit stream value-by-value: splitting
one size-``k`` draw into sequential tiles yields the bitwise-identical
concatenation, and ``Generator.random(out=view)`` fills a contiguous
float64 view exactly as ``Generator.random(k)`` would — the two
stream-accounting properties the chunked-equivalence tests pin.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.fastpath.backend import BackendLike, resolve_backend

__all__ = [
    "fill_choices",
    "fill_priorities",
    "grouped_accept",
    "grouped_accept_with_priorities",
    "multinomial_occupancy",
    "multinomial_occupancy_batched",
    "sample_choices",
    "sample_uniform_choices",
    "validate_pvals",
]

#: Absolute tolerance for a probability vector's sum; within it the
#: vector is renormalized exactly, beyond it the caller made an error.
_PVALS_SUM_ATOL = 1e-6


def validate_pvals(pvals: np.ndarray, n_bins: int) -> np.ndarray:
    """Validate and exactly normalize a bin probability vector.

    Accepts any float-convertible 1-D array of length ``n_bins`` whose
    entries are finite, non-negative, and sum to 1 within a small float
    tolerance (zero-probability bins are fine).  Returns a fresh
    float64 copy renormalized to sum to exactly 1, so downstream
    inverse-CDF and multinomial sampling never sees drift.
    """
    arr = np.asarray(pvals)
    if not (
        np.issubdtype(arr.dtype, np.floating)
        or np.issubdtype(arr.dtype, np.integer)
    ):
        raise ValueError(
            f"pvals must be a numeric array, got dtype {arr.dtype}"
        )
    arr = arr.astype(np.float64, copy=True)
    if arr.ndim != 1 or arr.size != n_bins:
        raise ValueError(
            f"pvals must be 1-D of length n_bins={n_bins}, "
            f"got shape {arr.shape}"
        )
    if not np.all(np.isfinite(arr)):
        raise ValueError("pvals must be finite")
    if arr.min(initial=0.0) < 0:
        raise ValueError("pvals must be non-negative")
    total = float(arr.sum())
    if abs(total - 1.0) > _PVALS_SUM_ATOL:
        raise ValueError(
            f"pvals must sum to 1 (within {_PVALS_SUM_ATOL}), got {total}"
        )
    # Renormalize only when the sum actually drifted: dividing by an
    # exact 1.0 is the identity, and skipping it keeps historical
    # probability vectors (e.g. superbin block_sizes/n with power-of-2
    # n) bitwise-unchanged through this validator.
    return arr if total == 1.0 else arr / total


def sample_uniform_choices(
    k: int, n_bins: int, rng: np.random.Generator
) -> np.ndarray:
    """``k`` i.i.d. uniform bin indices in ``[0, n_bins)`` as int64."""
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    if n_bins < 1:
        raise ValueError(f"n_bins must be >= 1, got {n_bins}")
    return rng.integers(0, n_bins, size=k, dtype=np.int64)


def sample_choices(
    k: int,
    n_bins: int,
    rng: np.random.Generator,
    pvals: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``k`` i.i.d. bin indices drawn from ``pvals`` (uniform if None).

    The uniform path (``pvals=None``) is exactly
    :func:`sample_uniform_choices` — same RNG consumption, bitwise
    identical — so workload-aware call sites stay seed-compatible with
    the historical uniform samplers.  The non-uniform path uses
    inverse-CDF sampling (``searchsorted`` on the cumulative
    distribution), one uniform draw per request.
    """
    if pvals is None:
        return sample_uniform_choices(k, n_bins, rng)
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    if n_bins < 1:
        raise ValueError(f"n_bins must be >= 1, got {n_bins}")
    p = validate_pvals(pvals, n_bins)
    if k == 0:
        return np.zeros(0, dtype=np.int64)
    cdf = np.cumsum(p)
    cdf[-1] = 1.0  # guard the top edge against cumsum rounding
    choices = np.searchsorted(cdf, rng.random(k), side="right")
    # searchsorted can only exceed the range if rng.random() returned a
    # value >= cdf[-1] = 1.0, which it cannot; clip keeps this airtight
    # for subnormal pathologies at zero cost.
    return np.minimum(choices, n_bins - 1).astype(np.int64, copy=False)


def fill_choices(
    out: np.ndarray,
    n_bins: int,
    rng: np.random.Generator,
    pvals: Optional[np.ndarray] = None,
    chunk_size: Optional[int] = None,
) -> np.ndarray:
    """Fill ``out`` with ``sample_choices(out.size, n_bins, rng, pvals)``.

    The values (and the RNG stream consumed) are exactly those of
    :func:`sample_choices`; only the storage differs — ``out`` may be a
    persistent arena buffer of a narrower integer dtype (values always
    fit: they are bin indices below ``n_bins``).  Draws go through a
    bounded temporary of at most ``chunk_size`` elements (default: one
    shot), so the transient footprint of an ``m = 10**8`` round is one
    tile, not a second ``O(m)`` array.  Tiling is stream-exact because
    the generator consumes its bit stream value-by-value: sequential
    tile draws concatenate bitwise-identically to the single draw.
    """
    k = out.size
    if out.ndim != 1 or not out.flags.c_contiguous:
        raise ValueError("out must be a 1-D C-contiguous array")
    if not np.issubdtype(out.dtype, np.integer):
        raise ValueError(
            f"out must be an integer array, got dtype {out.dtype}"
        )
    if n_bins < 1:
        raise ValueError(f"n_bins must be >= 1, got {n_bins}")
    if n_bins > np.iinfo(out.dtype).max + 1:
        raise ValueError(
            f"n_bins={n_bins} does not fit in out dtype {out.dtype}"
        )
    tile = max(1, k if chunk_size is None else int(chunk_size))
    p = None
    cdf = None
    if pvals is not None:
        p = validate_pvals(pvals, n_bins)
        cdf = np.cumsum(p)
        cdf[-1] = 1.0
    for lo in range(0, k, tile):
        hi = min(lo + tile, k)
        if cdf is None:
            out[lo:hi] = rng.integers(0, n_bins, size=hi - lo, dtype=np.int64)
        else:
            draws = np.searchsorted(cdf, rng.random(hi - lo), side="right")
            out[lo:hi] = np.minimum(draws, n_bins - 1)
    return out


def fill_priorities(
    out: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Fill ``out`` with ``rng.random(out.size)``, allocation-free.

    ``Generator.random(out=view)`` draws the same float64 stream as
    ``Generator.random(k)``; passing an arena view avoids the fresh
    ``O(k)`` allocation every accept step would otherwise make.
    """
    if out.ndim != 1 or not out.flags.c_contiguous:
        raise ValueError("out must be a 1-D C-contiguous array")
    if out.dtype != np.float64:
        raise ValueError(
            f"priorities must be float64 (the accept stream's historical "
            f"width), got {out.dtype}"
        )
    if out.size:
        rng.random(out=out)
    return out


def multinomial_occupancy(
    k: int,
    n_bins: int,
    rng: np.random.Generator,
    pvals: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-bin request counts for ``k`` exchangeable requests.

    Exactly the distribution of ``np.bincount(sample_choices(k, n, rng,
    pvals), minlength=n)`` at a fraction of the cost for ``k >> n``.
    Uses the conditional binomial decomposition internally via numpy's
    ``multinomial``, which accepts 64-bit ``k``.  ``pvals=None`` is the
    historical uniform path (bitwise unchanged); any validated
    probability vector generalizes it to skewed choice distributions.
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    if n_bins < 1:
        raise ValueError(f"n_bins must be >= 1, got {n_bins}")
    if k == 0:
        return np.zeros(n_bins, dtype=np.int64)
    if pvals is None:
        p = np.full(n_bins, 1.0 / n_bins)
    else:
        p = validate_pvals(pvals, n_bins)
    return rng.multinomial(k, p).astype(np.int64)


def multinomial_occupancy_batched(
    ks: np.ndarray,
    n_bins: int,
    rngs,
    pvals: Optional[np.ndarray] = None,
    active: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-bin request counts for ``T`` independent trials at once.

    Row ``t`` of the returned ``(T, n_bins)`` int64 matrix is exactly
    ``multinomial_occupancy(ks[t], n_bins, rngs[t], pvals)`` — each
    trial draws from its *own* generator, in trial order, so a batched
    trial is bitwise-identical to running it alone.  Trials outside the
    ``active`` mask (or with ``ks[t] == 0``) contribute an all-zero row
    and consume nothing from their generator — a saturated replication
    stops drawing, exactly as its sequential loop would have stopped.

    Parameters
    ----------
    ks:
        Per-trial request counts, shape ``(T,)``.
    n_bins:
        Size of the target space (shared by all trials).
    rngs:
        Sequence of ``T`` generators, one per trial.
    pvals:
        Optional shared choice distribution (validated once).
    active:
        Optional boolean mask of live trials; inactive rows stay zero.
    """
    ks = np.asarray(ks, dtype=np.int64)
    if ks.ndim != 1:
        raise ValueError(f"ks must be 1-D (one count per trial), got shape {ks.shape}")
    trials = ks.size
    if len(rngs) != trials:
        raise ValueError(
            f"need one generator per trial: got {len(rngs)} for {trials}"
        )
    if ks.min(initial=0) < 0:
        raise ValueError("per-trial counts must be >= 0")
    if n_bins < 1:
        raise ValueError(f"n_bins must be >= 1, got {n_bins}")
    if active is not None:
        active = np.asarray(active, dtype=bool)
        if active.shape != (trials,):
            raise ValueError(
                f"active mask must have shape ({trials},), got {active.shape}"
            )
    if pvals is None:
        p = np.full(n_bins, 1.0 / n_bins)
    else:
        p = validate_pvals(pvals, n_bins)
    counts = np.zeros((trials, n_bins), dtype=np.int64)
    for t in range(trials):
        if active is not None and not active[t]:
            continue
        k = int(ks[t])
        if k == 0:
            continue
        counts[t] = rngs[t].multinomial(k, p)
    return counts


def grouped_accept(
    choices: np.ndarray,
    capacity: np.ndarray,
    rng: np.random.Generator,
    buffers=None,
    backend: BackendLike = None,
) -> np.ndarray:
    """Boolean mask: which flat requests are accepted.

    Each bin ``b`` accepts ``min(capacity[b], #requests to b)`` of its
    requests, selected uniformly at random.

    Implementation: draw an i.i.d. priority per request, then resolve
    the within-bin selection with the active kernel backend — the
    ``reference`` lexsort by (bin, priority), or the ``fused``
    counting-sort grouping (see :mod:`repro.fastpath.backend`).  Both
    are bitwise-identical; no Python loop either way.

    Parameters
    ----------
    choices:
        int64 array of request targets (flat; multiple requests by one
        ball appear as multiple entries).
    capacity:
        int array of per-bin residual capacities (negative values are
        treated as 0).
    rng:
        Random stream for the within-bin selection.
    buffers:
        Optional :class:`repro.fastpath.buffers.RoundBuffers` arena;
        when given, the per-request priorities are drawn into a reused
        arena view (same float64 stream, no fresh ``O(k)`` allocation).
    backend:
        Kernel backend (name or instance); ``None`` resolves the
        ambient selection (:func:`repro.fastpath.backend.resolve_backend`).
    """
    choices = np.asarray(choices)
    capacity = np.atleast_1d(np.asarray(capacity))
    k = choices.size
    if k == 0:
        # Empty request round (e.g. a schedule running past the last
        # active ball with ``stop_when_empty=False``): nothing to
        # group, no RNG consumed.
        return np.zeros(0, dtype=bool)
    if not np.issubdtype(choices.dtype, np.integer):
        raise ValueError(
            f"choices must be an integer array, got dtype {choices.dtype}"
        )
    if choices.min() < 0 or choices.max() >= capacity.size:
        raise ValueError("request target out of range for capacity array")
    cap = np.maximum(capacity, 0)
    if int(cap.max(initial=0)) == 0:
        # Every bin saturated (zero-capacity round): all requests are
        # rejected; skip the O(k log k) sort and its priority draws.
        return np.zeros(k, dtype=bool)
    if buffers is not None:
        priorities = fill_priorities(
            buffers.take("accept_priorities", k, np.float64), rng
        )
    else:
        priorities = rng.random(k)
    return grouped_accept_with_priorities(
        choices, cap, priorities, backend=backend
    )


def grouped_accept_with_priorities(
    choices: np.ndarray,
    capacity: np.ndarray,
    priorities: np.ndarray,
    backend: BackendLike = None,
) -> np.ndarray:
    """The deterministic core of :func:`grouped_accept`.

    Accept the lowest-priority requests of each bin up to capacity.
    Splitting the priority draw from the selection lets a trial-batched
    caller concatenate many trials' requests — drawing each trial's
    priorities from that trial's own generator, offsetting bin indices
    into a composite ``trial * n + bin`` space — and resolve them all
    in one grouping pass, bitwise-matching the per-trial results.

    The grouping itself lives on the kernel backend
    (:mod:`repro.fastpath.backend`): the ``reference`` lexsort or the
    ``fused`` counting-sort path, selected by ``backend`` or the
    ambient context, identical in value either way.

    ``capacity`` must already be clamped to ``>= 0``; ``priorities``
    must align with ``choices``.
    """
    if priorities.shape != choices.shape:
        raise ValueError(
            f"priorities shape {priorities.shape} must match choices "
            f"shape {choices.shape}"
        )
    return resolve_backend(backend).grouped_accept_with_priorities(
        choices, capacity, priorities
    )
