#!/usr/bin/env python
"""Scenario: dispatch under failures — how robust is the schedule?

The paper's model is reliable; real clusters are not.  This example
exercises the repository's fault-injection extension
(:func:`repro.run_heavy_faulty`, see DESIGN.md §4 experiment A4):
balls (jobs) crash mid-protocol and messages are lost, including the
nasty case of a *lost accept* — the server reserves a slot for a job
that never hears about it ("ghost" capacity).

The sweep below shows the degradation curve: the oblivious threshold
schedule keeps absorbing retries (thresholds depend only on the round
index, so stragglers simply retry into the next round's fresh
capacity), and the max backlog degrades smoothly with the loss rate
instead of collapsing.

Run:
    python examples/fault_tolerance.py [--jobs 500000] [--servers 512]
"""

from __future__ import annotations

import argparse

import repro


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=500_000)
    parser.add_argument("--servers", type=int, default=512)
    parser.add_argument("--seed", type=int, default=5)
    args = parser.parse_args()
    m, n = args.jobs, args.servers

    print(
        f"dispatching {m:,} jobs onto {n} servers under faults "
        f"(mean backlog {m / n:.0f})\n"
    )
    header = (
        f"{'crash':>6s} {'msg loss':>9s} {'rounds':>7s} {'crashed':>9s} "
        f"{'ghost slots':>12s} {'max backlog':>12s} {'gap/survivors':>14s}"
    )
    print(header)
    print("-" * len(header))
    for crash, loss in (
        (0.00, 0.00),
        (0.00, 0.02),
        (0.00, 0.10),
        (0.00, 0.25),
        (0.01, 0.05),
        (0.05, 0.10),
    ):
        res = repro.allocate(
            "faulty", m, n, seed=args.seed, crash_prob=crash, loss_prob=loss
        )
        survivors = m - res.extra["crashed"]
        gap = res.max_load - survivors / n
        print(
            f"{crash:6.2f} {loss:9.2f} {res.rounds:7d} "
            f"{res.extra['crashed']:9,d} {res.extra['ghost_slots']:12,d} "
            f"{res.max_load:12,d} {gap:+14.1f}"
        )
    print()
    naive_gap = repro.allocate("single", m, n, seed=args.seed).gap
    print(
        "even at 25% message loss the dispatch gap stays a fraction of "
        f"the fault-free naive baseline's ({naive_gap:+.0f}): the "
        "schedule's conservatively-low thresholds are exactly what makes "
        "retries cheap."
    )


if __name__ == "__main__":
    main()
