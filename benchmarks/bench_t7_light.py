"""Benchmark + table regeneration for experiment T7 (light).

See DESIGN.md §4 for the experiment's claim and parameters; the quick-
scale table is printed under -s, the full-scale run is archived in
EXPERIMENTS.md.
"""

from conftest import bench_experiment


def test_experiment_t7(benchmark):
    bench_experiment(benchmark, "T7")
