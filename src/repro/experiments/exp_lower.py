"""Experiments F3, F4, T6, T9: the lower-bound machinery of Section 4."""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.berry_esseen import (
    binomial_upper_deviation_probability,
    overload_probability_lower_bound,
)
from repro.analysis.theory import theorem7_t
from repro.experiments.report import ExperimentReport
from repro.fastpath.sampling import multinomial_occupancy
from repro.lowerbound.adversary import ALL_ADVERSARIES
from repro.lowerbound.recursion import trace_recursion
from repro.lowerbound.rejection import measure_rejections
from repro.lowerbound.simulate_degree import (
    run_degree_d_direct,
    run_degree_d_simulated,
)
from repro.utils.seeding import RngFactory

__all__ = ["exp_f3", "exp_f4", "exp_t6", "exp_t9"]


def exp_f3(scale: str = "quick", seed: int = 20190416) -> ExperimentReport:
    """F3 — Theorem 7's rejection floor across threshold adversaries."""
    report = ExperimentReport(
        exp_id="F3",
        title="Single-round rejections vs Omega(sqrt(Mn)/t), "
        "thresholds summing to M + n",
        claim="Thm 7: any oblivious thresholds reject Omega(sqrt(Mn)/t) "
        "balls w.h.p.",
        columns=[
            "n",
            "M/n",
            "adversary",
            "rejected(mean)",
            "sqrt(Mn)/t",
            "ratio",
        ],
    )
    grid = (
        [(1024, 64), (4096, 256)]
        if scale == "quick"
        else [(1024, 16), (1024, 256), (4096, 64), (16384, 64), (16384, 1024)]
    )
    trials = 5 if scale == "quick" else 20
    ok = True
    factory = RngFactory(seed)
    for n, ratio in grid:
        m_balls = n * ratio
        t = theorem7_t(m_balls, n)
        reference = math.sqrt(m_balls * n) / t
        for adversary in ALL_ADVERSARIES:
            rng = factory.stream("f3", n, ratio, adversary.name)
            thresholds = adversary.thresholds(m_balls, n, n, rng)
            outcomes = measure_rejections(
                m_balls, n, thresholds, seed=rng, trials=trials
            )
            mean_rej = float(np.mean([o.rejected for o in outcomes]))
            report.add_row(
                n, ratio, adversary.name, mean_rej, reference,
                mean_rej / reference,
            )
            # The floor: rejections never collapse below a constant
            # fraction of sqrt(Mn)/t.  (The constant in Omega() is small;
            # 0.05 is far above sampling noise and far below the
            # typical ratio ~0.4-40.)
            ok = ok and mean_rej >= 0.05 * reference
    report.passed = ok
    report.notes.append(
        "Theorem 7 is a lower bound: every adversary's ratio must stay "
        "bounded away from 0; adversaries waste capacity and land higher."
    )
    return report


def exp_f4(scale: str = "quick", seed: int = 20190416) -> ExperimentReport:
    """F4 — the M_i recursion: best-case progress of threshold rounds."""
    report = ExperimentReport(
        exp_id="F4",
        title="Remaining balls per round under best-case (uniform) "
        "thresholds vs the Theorem 2 induction floor",
        claim="Thm 2 proof: M_i >= (m/n)^(3^-i) n^(1-3^-i) "
        "=> Omega(log log(m/n)) rounds",
        columns=["round", "measured M_i", "floor M_i", "measured/floor"],
    )
    n = 4096
    ratio = 2**12 if scale == "quick" else 2**16
    m = n * ratio
    trace = trace_recursion(m, n, seed=seed)
    ok = True
    for i, measured in enumerate(trace.measured):
        floor = (
            trace.theoretical[i]
            if i < len(trace.theoretical)
            else float("nan")
        )
        rel = measured / floor if floor and not math.isnan(floor) else float("nan")
        report.add_row(i, measured, floor, rel)
        if not math.isnan(rel) and floor > 8 * n:
            ok = ok and rel >= 0.9  # measured trajectory above the floor
    if len(trace.measured) >= 2:
        from repro.experiments.plotting import ascii_chart

        padded_floor = [
            trace.theoretical[i] if i < len(trace.theoretical) else float("nan")
            for i in range(len(trace.measured))
        ]
        report.charts.append(
            ascii_chart(
                list(range(len(trace.measured))),
                {"measured M_i": [float(v) for v in trace.measured],
                 "induction floor": padded_floor},
                title="best-case remaining balls vs the Theorem 2 floor",
                x_label="round",
                log_y=True,
            )
        )
    report.add_row(
        "rounds",
        trace.rounds_to_On,
        trace.predicted_rounds,
        trace.rounds_to_On / max(trace.predicted_rounds, 1),
    )
    ok = ok and trace.rounds_to_On >= trace.predicted_rounds
    report.passed = ok
    report.notes.append(
        "measured >= floor row-wise and measured rounds >= predicted "
        "Omega(log log(m/n)) rounds: the lower bound binds even for the "
        "rejection-minimizing uniform thresholds."
    )
    return report


def exp_t6(scale: str = "quick", seed: int = 20190416) -> ExperimentReport:
    """T6 — Lemmas 2/3: degree-d runs equal their degree-1 simulations."""
    report = ExperimentReport(
        exp_id="T6",
        title="Degree-d direct vs degree-1 simulated executions",
        claim="Lemmas 2-3: a degree-1 algorithm with d-round phases "
        "reproduces any degree-d algorithm's loads exactly",
        columns=[
            "m",
            "n",
            "d",
            "max load (direct)",
            "max load (simulated)",
            "loads identical",
            "rounds direct",
            "rounds simulated",
        ],
    )
    cases = (
        [(4096, 256, 2), (4096, 256, 3)]
        if scale == "quick"
        else [(4096, 256, 2), (16384, 512, 2), (16384, 512, 3), (65536, 1024, 4)]
    )
    ok = True
    for m, n, d in cases:
        mean = m // n
        thresholds = [mean - max(1, mean // 4), mean, mean + 1, mean + 2, mean + 4]
        direct = run_degree_d_direct(m, n, d, thresholds, seed=seed)
        simulated = run_degree_d_simulated(m, n, d, thresholds, seed=seed)
        identical = bool(np.array_equal(direct.loads, simulated.loads))
        report.add_row(
            m,
            n,
            d,
            int(direct.loads.max()),
            int(simulated.loads.max()),
            identical,
            direct.rounds,
            simulated.rounds,
        )
        ok = ok and identical
        ok = ok and simulated.rounds == d * direct.rounds
    report.passed = ok
    return report


def exp_t9(scale: str = "quick", seed: int = 20190416) -> ExperimentReport:
    """T9 — Claim 5: any bin overloads by 2 sqrt(mu) with constant
    probability p0 (the Berry-Esseen engine of the lower bound)."""
    report = ExperimentReport(
        exp_id="T9",
        title="Pr[bin load >= mu + 2 sqrt(mu)]: measured vs Berry-Esseen "
        "lower bound vs exact binomial tail",
        claim="Claim 5 via Theorem 4 (Berry-Esseen): the overload event "
        "has probability Omega(1), uniformly in M and n",
        columns=[
            "n",
            "M/n",
            "measured p0",
            "exact binomial",
            "BE lower bound",
            "constant?",
        ],
    )
    grid = (
        [(256, 256), (1024, 4096)]
        if scale == "quick"
        else [(256, 64), (256, 4096), (1024, 256), (4096, 1024), (4096, 65536)]
    )
    trials = 40 if scale == "quick" else 100
    rng = RngFactory(seed).stream("t9")
    ok = True
    measured_values = []
    for n, ratio in grid:
        m_balls = n * ratio
        mu = ratio
        threshold = math.ceil(mu + 2.0 * math.sqrt(mu))
        over = 0
        for _ in range(trials):
            counts = multinomial_occupancy(m_balls, n, rng)
            over += int((counts >= threshold).sum())
        measured = over / (trials * n)
        exact = binomial_upper_deviation_probability(m_balls, n)
        be_lower = overload_probability_lower_bound(m_balls, n)
        constant = 0.005 <= measured <= 0.06
        measured_values.append(measured)
        report.add_row(n, ratio, measured, exact, be_lower, constant)
        ok = ok and constant
        ok = ok and measured >= be_lower - 0.01  # BE bound certified
        ok = ok and abs(measured - exact) <= 0.02
    # Constancy across the sweep: max/min ratio bounded.
    if min(measured_values) > 0:
        ok = ok and max(measured_values) / min(measured_values) <= 4.0
    report.passed = ok
    report.notes.append(
        "p0 ~ 0.02 across two orders of magnitude in M/n — the "
        "'constant probability' that powers Corollary 1's expected "
        "rejection count p0*sqrt(Mn)."
    )
    return report
