"""Iterated logarithms and tower functions.

The round complexity of the paper's symmetric algorithm is
``O(log log(m/n) + log* n)`` (Theorem 1) and the light-load subroutine
``A_light`` of [LW16] runs in ``log* n + O(1)`` rounds, contacting a
tower-growing number of bins per round.  These helpers provide the exact
integer-valued versions of the functions used by both the algorithms and
the analysis/prediction modules.

All functions operate on Python ints/floats and are intentionally
loop-based: the arguments are tiny (``log* n <= 5`` for any physically
representable ``n``), so no vectorization is warranted.
"""

from __future__ import annotations

import math

__all__ = ["ilog2", "iterated_log2", "log_star", "loglog2", "tower"]


def ilog2(x: float) -> int:
    """Floor of the base-2 logarithm of ``x``.

    Parameters
    ----------
    x:
        A value ``>= 1``.  Integers are handled exactly via
        :meth:`int.bit_length`, avoiding float rounding at powers of two.

    Returns
    -------
    int
        ``floor(log2(x))``.

    Raises
    ------
    ValueError
        If ``x < 1``.
    """
    if x < 1:
        raise ValueError(f"ilog2 requires x >= 1, got {x!r}")
    if isinstance(x, int):
        return x.bit_length() - 1
    return int(math.floor(math.log2(x)))


def loglog2(x: float) -> float:
    """``log2(log2(x))`` with the convention that values ``<= 2`` map to 0.

    The paper's round bound ``O(log log(m/n))`` degenerates gracefully for
    small loads; clamping at zero keeps predictions monotone and avoids
    ``log`` of non-positive numbers in sweeps that include ``m = n``.
    """
    if x <= 2:
        return 0.0
    inner = math.log2(x)
    if inner <= 1:
        return 0.0
    return math.log2(inner)


def iterated_log2(x: float, times: int) -> float:
    """Apply ``log2`` to ``x`` repeatedly, ``times`` times, clamping at 0.

    Used by the prediction module to evaluate nested-logarithm round
    bounds without spelling out each composition.
    """
    if times < 0:
        raise ValueError(f"times must be >= 0, got {times}")
    value = float(x)
    for _ in range(times):
        if value <= 1.0:
            return 0.0
        value = math.log2(value)
    return value


def log_star(x: float, base: float = 2.0) -> int:
    """The iterated logarithm ``log*``: how many times ``log`` must be
    applied to ``x`` before the result drops to ``<= 1``.

    ``log* n`` is the additive term in Theorem 1's round complexity and
    the round budget of ``A_light`` (Theorem 5).  For every practical
    ``n`` this is at most 5 (``2^65536`` is the first value with
    ``log* = 6`` in base 2).

    Parameters
    ----------
    x:
        The argument; values ``<= 1`` give 0.
    base:
        Logarithm base, default 2.
    """
    if base <= 1:
        raise ValueError(f"base must be > 1, got {base}")
    count = 0
    value = float(x)
    while value > 1.0:
        value = math.log(value, base)
        count += 1
        if count > 64:  # unreachable for finite floats; defensive only
            break
    return count


def tower(height: int, cap: float = float("inf")) -> float:
    """The power tower ``2^2^...^2`` of the given height, clamped at ``cap``.

    ``A_light`` increases the number of bins each unallocated ball
    contacts per round along a tower schedule (``k_{r+1} = 2^{k_r}``);
    the clamp mirrors the algorithmic cap of ``n`` contacts per ball.

    ``tower(0) == 1``, ``tower(1) == 2``, ``tower(2) == 4``,
    ``tower(3) == 16``, ``tower(4) == 65536``.
    """
    if height < 0:
        raise ValueError(f"height must be >= 0, got {height}")
    value = 1.0
    for _ in range(height):
        if value >= 64:  # 2**64 already exceeds any cap we use
            return cap
        value = 2.0**value
        if value >= cap:
            return cap
    return value
