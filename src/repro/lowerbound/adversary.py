"""Oblivious threshold adversaries for the lower-bound experiments.

Theorem 7 quantifies over *all* threshold vectors ``L`` with
``sum_i L_i = M + O(n)`` chosen independently of the balls' randomness.
The rejection floor ``Omega(sqrt(Mn)/t)`` must therefore hold for every
member of this family; experiment F3 measures it on representative and
deliberately adversarial members:

* :func:`uniform_adversary` — every bin gets ``M/n + slack/n`` (the
  schedule ``A_heavy``'s first round effectively plays, modulo its
  *negative* slack);
* :func:`two_tier_adversary` — half the bins generous, half stingy:
  maximizes variance across two values;
* :func:`dyadic_adversary` — thresholds spread across ``t`` dyadic
  classes ``mu + 2 sqrt(mu) - L_i in [2^k, 2^{k+1})``: the worst case
  the proof's class decomposition is designed for (every class equally
  heavy, so no single class dominates and the pigeonhole loses the full
  factor ``t``);
* :func:`hoarding_adversary` — a few bins take nearly all capacity (the
  rest get ~0): tests the regime where overload events concentrate;
* :func:`random_split_adversary` — random capacities summing to the
  budget, via a symmetric Dirichlet-multinomial split.

Every adversary returns integer ``L >= 0`` with
``sum L = M + extra_capacity`` exactly (the paper's ``M + O(n)``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.utils.seeding import as_generator
from repro.utils.validation import ensure_m_n

__all__ = [
    "ThresholdAdversary",
    "spread_budget",
    "uniform_adversary",
    "two_tier_adversary",
    "dyadic_adversary",
    "hoarding_adversary",
    "random_split_adversary",
    "ALL_ADVERSARIES",
]


@dataclass(frozen=True)
class ThresholdAdversary:
    """A named generator of oblivious threshold vectors."""

    name: str
    build: Callable[[int, int, int, Optional[np.random.Generator]], np.ndarray]

    def thresholds(
        self,
        m_balls: int,
        n: int,
        extra_capacity: int,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Integer thresholds with ``sum == m_balls + extra_capacity``."""
        m_balls, n = ensure_m_n(m_balls, n)
        if extra_capacity < 0:
            raise ValueError(
                f"extra_capacity must be >= 0, got {extra_capacity}"
            )
        out = np.asarray(
            self.build(m_balls, n, extra_capacity, rng), dtype=np.int64
        )
        if out.shape != (n,):
            raise ValueError(
                f"adversary {self.name} returned shape {out.shape}, "
                f"expected ({n},)"
            )
        if out.min() < 0:
            raise ValueError(f"adversary {self.name} returned negative L")
        total = int(out.sum())
        expected = m_balls + extra_capacity
        if total != expected:
            raise ValueError(
                f"adversary {self.name}: sum L = {total} != {expected}"
            )
        return out


def spread_budget(budget: int, weights: np.ndarray) -> np.ndarray:
    """Integer apportionment of ``budget`` proportional to ``weights``
    (largest-remainder method), exact to the unit.

    Shared by the threshold adversaries below and by the dynamic
    subsystem's ``greedy_adversary`` departure policy
    (:meth:`repro.dynamic.ResidentState.depart`), which apportions its
    drain budget across the tied lightest bins with it.
    """
    weights = np.maximum(np.asarray(weights, dtype=np.float64), 0.0)
    total_w = weights.sum()
    if total_w <= 0:
        weights = np.ones_like(weights)
        total_w = weights.sum()
    raw = budget * weights / total_w
    base = np.floor(raw).astype(np.int64)
    shortfall = budget - int(base.sum())
    if shortfall > 0:
        order = np.argsort(raw - base)[::-1]
        base[order[:shortfall]] += 1
    return base


#: Backward-compatible private alias (pre-PR-9 internal name).
_spread_budget = spread_budget


def _uniform(m_balls, n, extra, rng):
    return _spread_budget(m_balls + extra, np.ones(n))


def _two_tier(m_balls, n, extra, rng):
    budget = m_balls + extra
    half = n // 2
    weights = np.ones(n)
    # Generous half gets 1.5x the mean, stingy half 0.5x (sums preserved
    # by the apportionment).
    weights[:half] = 1.5
    weights[half:] = 0.5 if n > half else 1.0
    return _spread_budget(budget, weights)


def _dyadic(m_balls, n, extra, rng):
    """Spread ``S_i = mu + 2 sqrt(mu) - L_i`` across dyadic classes.

    With ``t`` classes and ``n/t`` bins per class, class ``k`` gets
    ``S ~ 2^k`` scaled so the total stays within budget.  This equalizes
    the classes' expected-rejection mass, the configuration the proof's
    pigeonhole step is weakest against.
    """
    budget = m_balls + extra
    mu = m_balls / n
    t = max(1, min(math.ceil(math.log2(max(n, 2))), math.ceil(math.log2(max(mu, 2))) + 1))
    target = mu + 2.0 * math.sqrt(mu)
    s_values = np.zeros(n)
    per_class = n // t
    for k in range(t):
        lo = k * per_class
        hi = (k + 1) * per_class if k < t - 1 else n
        s_values[lo:hi] = min(2.0**k, target)
    desired = np.maximum(target - s_values, 0.0)
    return _spread_budget(budget, desired)


def _hoarding(m_balls, n, extra, rng):
    budget = m_balls + extra
    k = max(1, n // 16)
    weights = np.full(n, 1e-3)
    weights[:k] = 1.0
    return _spread_budget(budget, weights)


def _random_split(m_balls, n, extra, rng):
    rng = as_generator(rng)
    weights = rng.dirichlet(np.full(n, 2.0))
    return _spread_budget(m_balls + extra, weights)


uniform_adversary = ThresholdAdversary("uniform", _uniform)
two_tier_adversary = ThresholdAdversary("two-tier", _two_tier)
dyadic_adversary = ThresholdAdversary("dyadic", _dyadic)
hoarding_adversary = ThresholdAdversary("hoarding", _hoarding)
random_split_adversary = ThresholdAdversary("random-split", _random_split)

#: The panel used by experiment F3.
ALL_ADVERSARIES: tuple[ThresholdAdversary, ...] = (
    uniform_adversary,
    two_tier_adversary,
    dyadic_adversary,
    hoarding_adversary,
    random_split_adversary,
)
