"""The lower-bound recursion: how fast *can* a threshold algorithm go?

Theorem 2's proof iterates Theorem 7: starting from ``M_0 = m``, each
round rejects at least ``~sqrt(M_i n)/t`` balls no matter the
thresholds, so ``M_{i+1} >= (m/n)^{3^{-(i+1)}} n^{1-3^{-(i+1)}}`` and
reaching ``M_i = O(n)`` takes ``Omega(log log(m/n))`` rounds.

:func:`trace_recursion` measures the *best case* empirically: it plays
the most favourable oblivious threshold vector (uniform with the full
``O(n)`` slack — symmetric thresholds minimize rejections for a
multinomial request profile by a convexity argument) each round,
feeding the measured rejection count into the next round, and records
the trajectory alongside the theoretical ``M_i`` floor.  Experiment F4
plots both; the measured trajectory must stay *above* the floor and its
length must grow like ``log log(m/n)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.theory import lower_bound_recursion
from repro.fastpath.sampling import multinomial_occupancy
from repro.lowerbound.adversary import ThresholdAdversary, uniform_adversary
from repro.utils.seeding import as_generator
from repro.utils.validation import ensure_m_n

__all__ = ["RecursionTrace", "trace_recursion"]


@dataclass(frozen=True)
class RecursionTrace:
    """Measured vs theoretical remaining-ball trajectories."""

    m: int
    n: int
    measured: list[int]  # M_i measured, best-case thresholds
    theoretical: list[float]  # Theorem 2 induction floor
    rounds_to_On: int  # measured rounds until M_i <= stop_factor * n
    predicted_rounds: int  # length of the theoretical trajectory - 1
    stop_factor: float


def trace_recursion(
    m: int,
    n: int,
    *,
    seed=None,
    adversary: ThresholdAdversary = uniform_adversary,
    extra_capacity_factor: float = 1.0,
    stop_factor: float = 4.0,
    max_rounds: int = 256,
) -> RecursionTrace:
    """Iterate best-case single rounds until ``M_i <= stop_factor * n``.

    Parameters
    ----------
    m, n:
        Starting instance (``m >= n``).
    adversary:
        Threshold family to play each round (default: uniform — the
        rejection-minimizing member).
    extra_capacity_factor:
        The ``O(n)`` slack as a multiple of ``n``: each round's
        thresholds sum to ``M_i + extra_capacity_factor * n``.  Theorem
        7 permits any ``O(n)``; the floor is insensitive to the
        constant.
    stop_factor:
        Stop once ``M_i <= stop_factor * n`` (Theorem 7 needs
        ``M >= Cn``).
    max_rounds:
        Safety cap.
    """
    m, n = ensure_m_n(m, n, require_heavy=True)
    rng = as_generator(seed)
    extra = int(math.ceil(extra_capacity_factor * n))
    measured = [m]
    current = m
    rounds = 0
    while current > stop_factor * n and rounds < max_rounds:
        thresholds = adversary.thresholds(current, n, extra, rng)
        counts = multinomial_occupancy(current, n, rng)
        rejected = int(np.maximum(counts - thresholds, 0).sum())
        if rejected >= current:
            raise RuntimeError("rejection count exceeded ball count")
        measured.append(rejected)
        current = rejected
        rounds += 1
        if current == 0:
            break
    theoretical = lower_bound_recursion(m, n)
    return RecursionTrace(
        m=m,
        n=n,
        measured=measured,
        theoretical=theoretical,
        rounds_to_On=rounds,
        predicted_rounds=len(theoretical) - 1,
        stop_factor=stop_factor,
    )
