"""The naive single-choice process: every ball picks one uniform bin.

This is the paper's stated point of comparison: for ``m >= n log n``
the max load is ``m/n + Theta(sqrt((m/n) log n))`` w.h.p. — the
``sqrt``-excess that ``A_heavy`` eliminates.  One round, one message per
ball.

Modes mirror the main algorithm: ``"perball"`` samples explicit choices
(and can return the assignment); ``"aggregate"`` samples the occupancy
vector directly from the multinomial distribution — identical in law,
``O(n)`` memory.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.api.spec import (
    register_allocator,
    register_dynamic,
    register_replicator,
)
from repro.dynamic.placement import DynamicPlacement
from repro.fastpath.roundstate import RoundState
from repro.result import AllocationResult
from repro.utils.seeding import RngFactory
from repro.utils.validation import ensure_m_n
from repro.workloads import bind_workload

__all__ = [
    "dynamic_single_choice",
    "replicate_single_choice",
    "run_single_choice",
]


@register_allocator(
    "single",
    summary="naive one-shot uniform random allocation",
    paper_ref="baseline",
    aliases=("single_choice", "one_choice"),
    modes=("perball", "aggregate"),
    kernel_backed=True,
    workload_capable=True,
)
def run_single_choice(
    m: int,
    n: int,
    *,
    seed=None,
    mode: Literal["perball", "aggregate"] = "perball",
    workload=None,
) -> AllocationResult:
    """One-shot random allocation.

    Parameters
    ----------
    m, n:
        Instance size (no heaviness requirement).
    seed:
        Reproducibility seed.
    mode:
        ``"perball"`` (explicit choices, per-ball accounting) or
        ``"aggregate"`` (multinomial occupancy, ``O(n)`` memory).
    workload:
        Optional :class:`repro.workloads.Workload` (or spec string):
        the choice distribution replaces the uniform draw and ball
        weights feed the weighted-load statistics.  The process has no
        admission control, so a capacity profile is structurally
        inapplicable (recorded in ``extra["workload"]``).  Uniform
        workloads are bitwise-identical to the historical run.
    """
    m, n = ensure_m_n(m, n)
    if mode not in ("perball", "aggregate"):
        raise ValueError(f"mode must be 'perball' or 'aggregate', got {mode!r}")
    factory = RngFactory(seed)
    bound = bind_workload(workload, m, n, factory, granularity=mode)
    rng = factory.stream("single", "choices")

    # One kernel round with unbounded capacity: every request is
    # accepted, and accepts are implicit (the ball's single message is
    # the commitment), hence accept_cost=0 / no bin->ball records.
    state = RoundState(
        m,
        n,
        granularity=mode,
        track_messages=(mode == "perball"),
        weights=bound.weights,
        weight_sum_sampler=bound.weight_sum_sampler,
    )
    batch = state.sample_contacts(rng, pvals=bound.pvals)
    decision = state.group_and_accept(batch, None)
    state.commit_and_revoke(
        batch, decision, accept_cost=0, record_accepts=False
    )

    extra: dict = {}
    workload_record = bound.extra_record(
        state.weighted_loads,
        inapplicable=(
            ("capacity",) if bound.capacity_scale is not None else ()
        ),
    )
    if workload_record is not None:
        extra["workload"] = workload_record

    return AllocationResult(
        algorithm="single-choice",
        m=m,
        n=n,
        loads=state.loads,
        rounds=1,
        metrics=state.metrics,
        messages=state.counter,
        total_messages=state.total_messages,
        seed_entropy=factory.root_entropy,
        extra=extra,
    )


@register_replicator("single", equivalent_mode="aggregate")
def replicate_single_choice(
    m: int,
    n: int,
    *,
    trials: int,
    seed_seqs,
    workload=None,
) -> list[AllocationResult]:
    """Run ``trials`` seeded one-shot allocations in one batched round.

    One trial-batched kernel round — a ``(T, n)`` occupancy matrix
    drawn from per-trial generators — replaces ``T`` sequential runs;
    trial ``t`` is bitwise-identical to ``run_single_choice(m, n,
    seed=seed_seqs[t], mode="aggregate", ...)``.
    """
    m, n = ensure_m_n(m, n)
    if len(seed_seqs) != trials:
        raise ValueError(f"need {trials} seed sequences, got {len(seed_seqs)}")
    factories = [RngFactory(s) for s in seed_seqs]
    bounds = [
        bind_workload(workload, m, n, f, granularity="aggregate")
        for f in factories
    ]
    rngs = [f.stream("single", "choices") for f in factories]
    samplers = [b.weight_sum_sampler for b in bounds]
    weighted = any(s is not None for s in samplers)

    state = RoundState(
        m,
        n,
        granularity="aggregate",
        trials=trials,
        weight_sum_sampler=samplers if weighted else None,
    )
    batch = state.sample_contacts(rngs, pvals=bounds[0].pvals)
    decision = state.group_and_accept(batch, None)
    state.commit_and_revoke(
        batch, decision, accept_cost=0, record_accepts=False
    )

    results = []
    for t, (factory, bound) in enumerate(zip(factories, bounds)):
        extra: dict = {}
        workload_record = bound.extra_record(
            state.weighted_loads[t] if state.weighted_loads is not None else None,
            inapplicable=(
                ("capacity",) if bound.capacity_scale is not None else ()
            ),
        )
        if workload_record is not None:
            extra["workload"] = workload_record
        results.append(
            AllocationResult(
                algorithm="single-choice",
                m=m,
                n=n,
                loads=state.loads[t],
                rounds=1,
                metrics=state.trial_metrics[t],
                messages=None,
                total_messages=int(state.total_messages[t]),
                seed_entropy=factory.root_entropy,
                extra=extra,
            )
        )
    return results


@register_dynamic("single")
def dynamic_single_choice(
    m: int,
    n: int,
    *,
    initial_loads: np.ndarray,
    seed=None,
    workload=None,
    mode: Literal["perball", "aggregate"] = "aggregate",
) -> DynamicPlacement:
    """Place a cohort of ``m`` new balls on top of residual bin loads.

    The one-shot process has no admission control, so residual loads
    only shift where the statistics land: the cohort's contacts are
    drawn exactly as in :func:`run_single_choice` (with all-zero
    ``initial_loads`` this *is* that run, stream for stream).
    """
    initial = np.asarray(initial_loads, dtype=np.int64)
    if initial.shape != (n,):
        raise ValueError(
            f"initial_loads must have shape ({n},), got {initial.shape}"
        )
    if m == 0:
        return DynamicPlacement(
            loads=initial.copy(),
            placed=0,
            unplaced=0,
            rounds=0,
            total_messages=0,
        )
    m, n = ensure_m_n(m, n)
    factory = RngFactory(seed)
    bound = bind_workload(workload, m, n, factory, granularity=mode)
    rng = factory.stream("single", "choices")
    state = RoundState(
        m,
        n,
        granularity=mode,
        weights=bound.weights,
        weight_sum_sampler=bound.weight_sum_sampler,
        initial_loads=initial,
    )
    batch = state.sample_contacts(rng, pvals=bound.pvals)
    decision = state.group_and_accept(batch, None)
    state.commit_and_revoke(
        batch, decision, accept_cost=0, record_accepts=False
    )
    extra: dict = {}
    workload_record = bound.extra_record(
        state.weighted_loads,
        inapplicable=(
            ("capacity",) if bound.capacity_scale is not None else ()
        ),
    )
    if workload_record is not None:
        extra["workload"] = workload_record
    return DynamicPlacement(
        loads=state.loads,
        placed=m,
        unplaced=0,
        rounds=1,
        total_messages=int(state.total_messages),
        extra=extra,
    )
