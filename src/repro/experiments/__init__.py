"""Experiment harness regenerating every quantitative claim of the paper.

The paper (a theory paper) contains no numeric tables or figures; the
experiment set is derived from its theorems and claims — the mapping is
the :data:`~repro.experiments.registry.EXPERIMENTS` table (listed by
``python -m repro.experiments`` with no argument) and each
experiment's docstring cites the claim it reproduces.  Every
experiment returns an
:class:`~repro.experiments.report.ExperimentReport` with prediction and
measurement columns; EXPERIMENTS.md archives one full run.

Run from the command line::

    python -m repro.experiments            # list experiments
    python -m repro.experiments T1         # run one (quick scale)
    python -m repro.experiments all --scale full

or from the benchmarks (``pytest benchmarks/ --benchmark-only``), one
bench per experiment.
"""

from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment
from repro.experiments.report import ExperimentReport
from repro.experiments.runner import repeat_gaps, repeat_metric

__all__ = [
    "EXPERIMENTS",
    "ExperimentReport",
    "get_experiment",
    "repeat_gaps",
    "repeat_metric",
    "run_experiment",
]
