#!/usr/bin/env python
"""Scaling study: rounds and gap as m/n grows from 2^2 to 2^40.

Uses the ``O(n)``-per-round aggregate execution path (exact in
distribution — see DESIGN.md §5) to push ``m`` far beyond what per-ball
simulation could hold in memory: a trillion balls runs in milliseconds.

Prints the doubly-logarithmic round curve of Theorem 1 next to the
prediction, and the flat O(1) gap curve next to the naive baseline's
square-root growth.

Run:
    python examples/scaling_study.py [--n 1024]
"""

from __future__ import annotations

import argparse
import math

import repro
from repro.analysis.theory import (
    expected_max_load_single_choice,
    predicted_rounds,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=1024)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()
    n = args.n

    header = (
        f"{'m/n':>12s} {'rounds':>7s} {'predicted':>10s} "
        f"{'gap':>6s} {'asym rounds':>12s} {'asym gap':>9s} "
        f"{'naive gap (pred)':>17s}"
    )
    print(f"A_heavy / asymmetric scaling at n={n} (aggregate path)\n")
    print(header)
    print("-" * len(header))
    for exponent in (2, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40):
        ratio = 2**exponent
        m = n * ratio
        # mode="auto" resolves to the O(n)-per-round aggregate path as
        # soon as m crosses repro.api.AGGREGATE_THRESHOLD; force it here
        # so the whole curve uses one execution path.
        res = repro.allocate("heavy", m, n, seed=args.seed, mode="aggregate")
        asym = repro.allocate("asymmetric", m, n, seed=args.seed, mode="aggregate")
        naive_gap = expected_max_load_single_choice(m, n) - m / n
        print(
            f"{ratio:12,} {res.rounds:7d} {predicted_rounds(m, n):10d} "
            f"{res.gap:+6.0f} {asym.rounds:12d} {asym.gap:+9.1f} "
            f"{naive_gap:17,.0f}"
        )
    print(
        "\nthe rounds column grows like log log(m/n) — from 2^2 to 2^40 "
        "(nine orders of magnitude) it gains only a handful of rounds — "
        "while the gap stays O(1) and the naive baseline's overload "
        "grows past a million balls."
    )


if __name__ == "__main__":
    main()
