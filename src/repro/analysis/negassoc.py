"""Empirical negative-association diagnostics (Definition 2, Proposition 1).

The paper's concentration arguments for occupancy counts
(Claims 3 and the class-``I_k`` argument in Theorem 7) rest on the
occupancy vector ``(X_1, ..., X_n)`` of a multinomial allocation being
*negatively associated* (NA), per Dubhashi-Ranjan [DR98, Theorem 13], and
on monotone functions of disjoint subsets of NA variables being NA
(Proposition 1).

NA cannot be verified exactly from samples, but its first-order
consequence can: every pair of monotone-increasing functions of disjoint
coordinates has non-positive covariance.  These helpers measure the
empirical pairwise covariances of occupancy indicators so tests and
experiment T5 can check that the measured violations are within sampling
noise (and *strictly* negative in expectation for the raw counts, whose
exact covariance is ``-m/n^2``).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

__all__ = [
    "empirical_covariance_matrix",
    "max_pairwise_covariance",
    "negative_association_violations",
    "exact_multinomial_covariance",
]


def exact_multinomial_covariance(m: int, n: int) -> float:
    """The exact covariance ``Cov(X_i, X_j) = -m / n^2`` (``i != j``) of
    multinomial occupancy counts — the canonical NA example."""
    if m < 0 or n < 1:
        raise ValueError(f"need m >= 0 and n >= 1, got m={m}, n={n}")
    return -m / (n * n)


def empirical_covariance_matrix(samples: np.ndarray) -> np.ndarray:
    """Covariance matrix of occupancy samples.

    Parameters
    ----------
    samples:
        Array of shape ``(trials, n)``; row ``t`` is the occupancy vector
        of trial ``t``.

    Returns
    -------
    numpy.ndarray
        The ``(n, n)`` sample covariance matrix.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 2:
        raise ValueError(f"samples must be 2-D (trials, n), got shape {samples.shape}")
    if samples.shape[0] < 2:
        raise ValueError("need at least 2 trials to estimate covariance")
    return np.cov(samples, rowvar=False)


def max_pairwise_covariance(samples: np.ndarray) -> float:
    """The largest off-diagonal covariance entry.

    For NA families this converges to a non-positive value; a decisively
    positive result flags a broken sampler.
    """
    cov = empirical_covariance_matrix(samples)
    off = cov - np.diag(np.diag(cov))
    return float(off.max(initial=-np.inf))


def negative_association_violations(
    samples: np.ndarray,
    *,
    transform: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    tolerance: Optional[float] = None,
) -> int:
    """Count coordinate pairs whose empirical covariance exceeds tolerance.

    Parameters
    ----------
    samples:
        ``(trials, n)`` occupancy samples.
    transform:
        Optional monotone per-coordinate transform applied before the
        covariance test (Proposition 1 closure under monotone maps); e.g.
        ``lambda x: (x >= T).astype(float)`` for the overload indicators
        ``z_i`` of Theorem 7.
    tolerance:
        Pairs with covariance above this are violations.  Defaults to
        three standard errors of a covariance estimate under
        independence: ``3 * var_i * var_j / sqrt(trials)`` is
        conservative; we use ``3 * sqrt(v_i v_j / trials)``.

    Returns
    -------
    int
        Number of violating unordered pairs (0 for a healthy sampler).
    """
    samples = np.asarray(samples, dtype=np.float64)
    if transform is not None:
        samples = np.asarray(transform(samples), dtype=np.float64)
        if samples.ndim != 2:
            raise ValueError("transform must preserve the (trials, n) shape")
    trials = samples.shape[0]
    cov = empirical_covariance_matrix(samples)
    variances = np.diag(cov)
    if tolerance is None:
        scale = np.sqrt(np.outer(variances, variances) / max(trials, 1))
        tol_matrix = 3.0 * np.maximum(scale, 1e-12)
    else:
        tol_matrix = np.full_like(cov, float(tolerance))
    off_mask = ~np.eye(cov.shape[0], dtype=bool)
    violations = (cov > tol_matrix) & off_mask
    # Each unordered pair appears twice in the symmetric matrix.
    return int(violations.sum() // 2)
