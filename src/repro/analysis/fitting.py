"""Shape-claim fitting: quantify "grows like" statements.

The reproduction's acceptance criteria are about *shape*: rounds grow
like ``log log(m/n)``, the naive gap like ``sqrt(m/n)``, the rejection
floor like ``sqrt(Mn)``.  This module turns those claims into fitted
exponents/coefficients with R², so EXPERIMENTS.md can report
"measured exponent 0.52 vs predicted 0.5" instead of eyeballing.

All fits are ordinary least squares on transformed coordinates
(log-log for power laws, log log-linear for the round curve); they are
intentionally simple — diagnostics, not inference.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "PowerLawFit",
    "LinearFit",
    "fit_power_law",
    "fit_loglog_rounds",
    "fit_linear",
]


@dataclass(frozen=True)
class LinearFit:
    """``y = slope * x + intercept`` with goodness of fit."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept

    def __str__(self) -> str:
        return (
            f"y = {self.slope:.3f} x + {self.intercept:.3f} "
            f"(R^2 = {self.r_squared:.3f})"
        )


@dataclass(frozen=True)
class PowerLawFit:
    """``y = coefficient * x^exponent`` with goodness of fit (in log space)."""

    exponent: float
    coefficient: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.coefficient * x**self.exponent

    def __str__(self) -> str:
        return (
            f"y = {self.coefficient:.3g} * x^{self.exponent:.3f} "
            f"(R^2 = {self.r_squared:.3f})"
        )


def _ols(x: np.ndarray, y: np.ndarray) -> LinearFit:
    if x.size != y.size:
        raise ValueError("x and y must have equal length")
    if x.size < 2:
        raise ValueError("need at least 2 points to fit")
    if np.allclose(x, x[0]):
        raise ValueError("x values are all equal; cannot fit a slope")
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    ss_res = float(((y - predicted) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return LinearFit(slope=float(slope), intercept=float(intercept), r_squared=r2)


def fit_linear(x: Sequence[float], y: Sequence[float]) -> LinearFit:
    """Plain OLS line fit."""
    return _ols(np.asarray(x, dtype=np.float64), np.asarray(y, dtype=np.float64))


def fit_power_law(x: Sequence[float], y: Sequence[float]) -> PowerLawFit:
    """Fit ``y = c * x^a`` by OLS in log-log coordinates.

    Points with non-positive ``x`` or ``y`` are rejected (power laws
    are only defined on the positive quadrant).
    """
    xa = np.asarray(x, dtype=np.float64)
    ya = np.asarray(y, dtype=np.float64)
    if (xa <= 0).any() or (ya <= 0).any():
        raise ValueError("power-law fit requires positive x and y")
    line = _ols(np.log(xa), np.log(ya))
    return PowerLawFit(
        exponent=line.slope,
        coefficient=math.exp(line.intercept),
        r_squared=line.r_squared,
    )


def fit_loglog_rounds(
    ratios: Sequence[float], rounds: Sequence[int]
) -> LinearFit:
    """Fit ``rounds = a * log2(log2(m/n)) + b``.

    Theorem 1 predicts the phase-1 round count is
    ``log_{3/2} log(m/n) + O(1)``, i.e. linear in ``log log(m/n)`` with
    slope ``1/log2(3/2) ≈ 1.71`` when the inner/outer logs are base 2.
    A good reproduction shows slope ≈ 1.7 and high R²; a *linear*-in-
    ``log(m/n)`` process (like the fixed-threshold variant) shows the
    log-log fit degrade and the slope blow up.
    """
    ratios_arr = np.asarray(ratios, dtype=np.float64)
    if (ratios_arr <= 2).any():
        raise ValueError("ratios must exceed 2 for log log to be defined")
    x = np.log2(np.log2(ratios_arr))
    return _ols(x, np.asarray(rounds, dtype=np.float64))


#: Theorem 1's predicted slope for rounds vs log2 log2(m/n): the phase-1
#: recursion multiplies log(m̃/n) by 2/3 per round, so rounds per
#: doubling of log(m/n) = 1/log2(3/2).
PREDICTED_ROUNDS_SLOPE: float = 1.0 / math.log2(1.5)
