"""Message and progress accounting for simulation runs.

Theorem 6 makes five quantitative promises beyond the load bound:
``O(m)`` total messages, ``O(1)`` expected / ``O(log n)`` w.h.p. messages
per ball, and ``(1+o(1)) m/n + O(log n)`` messages received per bin.
The engine (and the vectorized fast paths) feed every send into a
:class:`MessageCounter` so experiments can report all five.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = ["MessageCounter", "RoundMetrics", "RunMetrics"]


class MessageCounter:
    """Per-ball and per-bin message tallies.

    Ball-side counts include sends *and* receives (the paper bounds
    "sends and receives" for balls); bin-side counts track receives,
    which dominate and are what Theorem 6 bounds.
    """

    def __init__(self, m: int, n: int) -> None:
        if m < 0 or n < 1:
            raise ValueError(f"need m >= 0, n >= 1; got m={m}, n={n}")
        self.m = m
        self.n = n
        self.ball_sent = np.zeros(m, dtype=np.int64)
        self.ball_received = np.zeros(m, dtype=np.int64)
        self.bin_received = np.zeros(n, dtype=np.int64)
        self.bin_sent = np.zeros(n, dtype=np.int64)
        self.total = 0

    def record_ball_to_bin(self, ball: int, bin_: int, count: int = 1) -> None:
        self.ball_sent[ball] += count
        self.bin_received[bin_] += count
        self.total += count

    def record_bin_to_ball(self, bin_: int, ball: int, count: int = 1) -> None:
        self.bin_sent[bin_] += count
        self.ball_received[ball] += count
        self.total += count

    def record_bulk_ball_to_bin(self, bins_per_ball: np.ndarray, active_balls: np.ndarray) -> None:
        """Vectorized variant: ``active_balls[j]`` sent one message to
        ``bins_per_ball[j]``.

        The integer scatters dispatch through the kernel backend
        (:mod:`repro.fastpath.backend`, imported lazily — this module
        is below the fastpath layer); integer addition is associative,
        so every backend accumulates the exact same tallies.
        """
        from repro.fastpath.backend import scatter_counts

        scatter_counts(self.ball_sent, active_balls)
        scatter_counts(self.bin_received, bins_per_ball)
        self.total += len(active_balls)

    def record_bulk_bin_to_ball(self, bins: np.ndarray, balls: np.ndarray) -> None:
        from repro.fastpath.backend import scatter_counts

        scatter_counts(self.bin_sent, bins)
        scatter_counts(self.ball_received, balls)
        self.total += len(balls)

    # -- summary views ---------------------------------------------------

    @property
    def ball_total(self) -> np.ndarray:
        """Messages sent + received per ball."""
        return self.ball_sent + self.ball_received

    def max_ball_messages(self) -> int:
        return int(self.ball_total.max(initial=0))

    def mean_ball_messages(self) -> float:
        return float(self.ball_total.mean()) if self.m else 0.0

    def max_bin_received(self) -> int:
        return int(self.bin_received.max(initial=0))

    def summary(self) -> dict[str, float]:
        return {
            "total": float(self.total),
            "per_ball_mean": self.mean_ball_messages(),
            "per_ball_max": float(self.max_ball_messages()),
            "per_bin_received_max": float(self.max_bin_received()),
            "per_bin_received_mean": (
                float(self.bin_received.mean()) if self.n else 0.0
            ),
        }


@dataclass(frozen=True)
class RoundMetrics:
    """What happened in one synchronous round."""

    round_no: int
    unallocated_start: int
    requests_sent: int
    accepts_sent: int
    rejects_sent: int
    commits: int
    unallocated_end: int
    max_load: int
    threshold: Optional[float] = None

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        thr = f", T={self.threshold:.2f}" if self.threshold is not None else ""
        return (
            f"round {self.round_no}: active {self.unallocated_start} -> "
            f"{self.unallocated_end}, req={self.requests_sent}, "
            f"acc={self.accepts_sent}{thr}"
        )


@dataclass
class RunMetrics:
    """Accumulated metrics across a run; owned by engine or fast path."""

    m: int
    n: int
    rounds: list[RoundMetrics] = field(default_factory=list)

    def add_round(self, metrics: RoundMetrics) -> None:
        if self.rounds and metrics.round_no <= self.rounds[-1].round_no:
            raise ValueError(
                f"round numbers must increase: got {metrics.round_no} after "
                f"{self.rounds[-1].round_no}"
            )
        self.rounds.append(metrics)

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    @property
    def unallocated_history(self) -> list[int]:
        """Unallocated counts at the start of each round (``m_i``)."""
        return [r.unallocated_start for r in self.rounds]

    @property
    def total_requests(self) -> int:
        return sum(r.requests_sent for r in self.rounds)
