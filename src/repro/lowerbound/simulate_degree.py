"""The degree-reduction simulation of Lemmas 2 and 3.

Lemma 2: a uniform threshold algorithm of degree ``d`` (balls contact
``d`` bins per round) running ``r`` rounds can be simulated by a
degree-1 algorithm in ``d * r`` rounds: spread each ball's ``d``
contacts over ``d`` rounds and let bins defer their accept decision to
the end of the ``d``-round *phase*.  Lemma 3 then removes the phase
structure.  Together they let Theorem 7 (proved for degree 1) cover all
``d = O(1)`` algorithms.

The reproduction realizes the simulation *exactly*: both executions
consume the same pre-drawn contact tensor, and because the bins' accept
rule is applied to the same per-phase request multisets with the same
tie-breaking randomness, the resulting load vectors are **bitwise
identical** — the strongest checkable form of "achieves the same
maximal load".  Experiment T6 and the test suite assert this equality
and separately compare load *distributions* across independent seeds.

The concrete algorithm family simulated here is the natural degree-d
generalization of the paper's threshold protocol: in each phase every
unallocated ball contacts ``d`` uniform bins; each bin accepts up to
``T_phase - load`` of the requests it received during the phase; balls
receiving several accepts commit to one (lowest tie-break mark) and the
other accepts are revoked (capacity returns).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.utils.seeding import RngFactory
from repro.utils.validation import check_positive_int, ensure_m_n

__all__ = [
    "DegreeDOutcome",
    "phase_resolution",
    "run_degree_d_direct",
    "run_degree_d_simulated",
]


@dataclass(frozen=True)
class DegreeDOutcome:
    """Result of a degree-d threshold run (direct or simulated)."""

    loads: np.ndarray
    rounds: int  # message rounds consumed (phases * 1 or phases * d)
    phases: int
    remaining: int
    assignment: np.ndarray  # ball -> bin or -1


def _phase_resolution(
    contacts: np.ndarray,  # (u, d) global bin targets for active balls
    marks: np.ndarray,  # (u, d) tie-break priorities, i.i.d. uniform
    loads: np.ndarray,
    threshold: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Resolve one phase: which balls commit, and to which bin.

    Bin-side rule: accept the requests with the smallest tie-break
    marks, up to ``threshold - load`` (the adversarial port order is
    uniformized by the i.i.d. marks).  Ball-side rule: commit to the
    accepting bin with the smallest mark; revoked accepts return
    capacity *within the same phase resolution* (bins' capacity is
    consumed only by commits, mirroring step 5 of the family's
    definition where revocations precede the next phase).

    This is the shared ``priority_commit`` round kernel
    (:func:`repro.fastpath.roundstate.priority_commit_accept`) applied
    to phase-shaped ``(u, d)`` inputs; the same kernel drives
    :func:`repro.core.multicontact.run_heavy_multicontact`.

    Returns ``(committed_mask, committed_bin)`` over the active-ball
    axis.
    """
    from repro.fastpath.roundstate import priority_commit_accept

    u, d = contacts.shape
    return priority_commit_accept(
        contacts.reshape(-1),
        marks.reshape(-1),
        np.repeat(np.arange(u), d),
        u,
        np.maximum(threshold - loads, 0),
    )


#: Public alias: the phase-resolution kernel is also the round kernel of
#: the degree-d symmetric variant (repro.core.multicontact).
phase_resolution = _phase_resolution


def _draw_phase(
    factory: RngFactory, phase: int, active_ids: np.ndarray, d: int, n: int
) -> tuple[np.ndarray, np.ndarray]:
    """Contacts and tie-break marks for a phase, keyed by *global ball
    id* so the direct and simulated executions consume identical
    randomness regardless of execution order."""
    u = active_ids.size
    contacts = np.empty((u, d), dtype=np.int64)
    marks = np.empty((u, d), dtype=np.float64)
    # One stream per (phase, ball): exact per-ball reproducibility.  The
    # loop is over *active* balls only; by the time this matters for
    # performance (phases >= 1) the active count has collapsed.
    for row, ball in enumerate(active_ids):
        rng = factory.stream("phase", phase, "ball", int(ball))
        contacts[row] = rng.integers(0, n, size=d)
        marks[row] = rng.random(size=d)
    return contacts, marks


def _run_phases(
    m: int,
    n: int,
    d: int,
    thresholds: Sequence[int],
    factory: RngFactory,
    rounds_per_phase: int,
) -> DegreeDOutcome:
    loads = np.zeros(n, dtype=np.int64)
    assignment = np.full(m, -1, dtype=np.int64)
    active = np.arange(m, dtype=np.int64)
    phases = 0
    for phase, threshold in enumerate(thresholds):
        if active.size == 0:
            break
        contacts, marks = _draw_phase(factory, phase, active, d, n)
        committed_mask, committed_bin = _phase_resolution(
            contacts, marks, loads, int(threshold)
        )
        winners = active[committed_mask]
        assignment[winners] = committed_bin[committed_mask]
        np.add.at(loads, committed_bin[committed_mask], 1)
        active = active[~committed_mask]
        phases += 1
    return DegreeDOutcome(
        loads=loads,
        rounds=phases * rounds_per_phase,
        phases=phases,
        remaining=int(active.size),
        assignment=assignment,
    )


def run_degree_d_direct(
    m: int,
    n: int,
    d: int,
    thresholds: Sequence[int],
    *,
    seed=None,
) -> DegreeDOutcome:
    """Run the degree-d threshold algorithm directly: one phase per
    message round (balls send all ``d`` requests simultaneously)."""
    m, n = ensure_m_n(m, n)
    d = check_positive_int(d, "d")
    return _run_phases(m, n, d, thresholds, RngFactory(seed), 1)


def run_degree_d_simulated(
    m: int,
    n: int,
    d: int,
    thresholds: Sequence[int],
    *,
    seed=None,
) -> DegreeDOutcome:
    """Run the Lemma 2 simulation: each phase stretched over ``d``
    degree-1 rounds, bins deciding at phase end.

    Because bins defer all decisions to the end of the phase and the
    request multiset per phase is identical to the direct execution's
    (same per-ball streams), the outcome is **bitwise identical**; only
    the round accounting differs (``d`` message rounds per phase).  This
    *is* the content of Lemma 2 — the function exists so tests and
    experiment T6 can verify the equivalence rather than assume it.
    """
    m, n = ensure_m_n(m, n)
    d = check_positive_int(d, "d")
    return _run_phases(m, n, d, thresholds, RngFactory(seed), d)
