"""Tests for the combined dispatcher (Section 3 success-probability note)."""

import math

import pytest

from repro.core.combined import run_combined, should_use_trivial


class TestDispatchRule:
    def test_tiny_n_uses_trivial(self):
        # n = 2, m/n = 2^20: log log = log2(20) ~ 4.3 > 2
        assert should_use_trivial(2**21, 2)

    def test_moderate_n_uses_heavy(self):
        assert not should_use_trivial(2**21, 64)

    def test_boundary_monotone_in_n(self):
        m = 2**40
        flags = [should_use_trivial(m, n) for n in (2, 3, 4, 8, 64, 1024)]
        # once False it stays False as n grows
        first_false = flags.index(False) if False in flags else len(flags)
        assert all(not f for f in flags[first_false:])

    def test_requires_heavy_regime(self):
        with pytest.raises(ValueError):
            should_use_trivial(5, 10)


class TestRunCombined:
    def test_trivial_branch(self):
        res = run_combined(2**20, 2, seed=1)
        assert res.extra["branch"] == "trivial"
        assert res.algorithm == "combined"
        assert res.complete
        assert res.max_load == math.ceil(2**20 / 2)
        assert res.rounds <= 2

    def test_heavy_branch(self):
        res = run_combined(2**16, 256, seed=1)
        assert res.extra["branch"] == "heavy"
        assert res.complete
        assert res.gap <= 8.0

    def test_branch_matches_predicate(self):
        for m, n in [(2**22, 3), (2**18, 128), (2**24, 4)]:
            res = run_combined(m, n, seed=2, mode="aggregate")
            expected = "trivial" if should_use_trivial(m, n) else "heavy"
            assert res.extra["branch"] == expected

    def test_aggregate_mode_passthrough(self):
        res = run_combined(2**22, 512, seed=1, mode="aggregate")
        assert res.complete
        assert res.extra["branch"] == "heavy"

    def test_conservation_both_branches(self):
        for m, n in [(2**18, 2), (2**16, 128)]:
            res = run_combined(m, n, seed=3)
            assert res.loads.sum() == m
