"""Statistical acceptance tests: distributional paper claims at scale.

The paper's bounds are w.h.p. statements about *distributions* — the
gap of ``A_heavy`` is ``O(1)`` with probability ``1 - n^{-c}``, naive
single-choice concentrates at its ``sqrt``-excess, and the aggregate
fast path is identical in law to the per-ball semantics.  With the
trial-batched replication engine, 256 replications per assertion are
cheap enough to run in the tier-1 suite, so these claims are asserted
on empirical quantiles rather than a handful of runs.

All seeds are pinned, so every assertion is deterministic; the
tolerances are set wide enough that they are *comfortably* inside the
observed values (documented per test), not at the edge — re-tightening
them is an explicit act, never a flake.
"""

import math

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.analysis.theory import (
    expected_max_load_single_choice,
    predicted_rounds,
)
from repro.api import allocate_many, replicate
from repro.experiments.exp_replication import heavy_gap_envelope

SEED = 20190416
TRIALS = 256


class TestHeavyGapEnvelope:
    """Theorem 1: gap O(1) w.h.p. — checked at the p99 quantile."""

    @pytest.mark.parametrize("n,ratio", [(256, 64), (256, 512), (1024, 64)])
    def test_gap_quantiles_within_theory_envelope(self, n, ratio):
        m = n * ratio
        rep = replicate("heavy", m, n, trials=TRIALS, seed=SEED)
        assert rep.all_complete
        q = rep.quantiles("gap", (0.5, 0.95, 0.99, 1.0))
        envelope = heavy_gap_envelope(n)
        # Observed: p50 = 4, max <= 5 at these sizes; envelope is 7.
        assert 0.0 <= q[0.5] <= q[0.99] <= envelope
        assert q[1.0] <= envelope + 1  # even the worst of 256 trials
        # m >= n => max load >= ceil(m/n) => gap >= 0 in every trial.
        assert rep.gaps.min() >= 0.0

    def test_round_quantiles_within_theory_bound(self):
        m, n = 256 * 512, 256
        rep = replicate("heavy", m, n, trials=TRIALS, seed=SEED)
        q = rep.quantiles("rounds", (0.5, 0.99))
        bound = predicted_rounds(m, n) + 2
        # Observed: p99 = 9 vs bound 14.
        assert q[0.5] <= q[0.99] <= bound

    def test_message_bound_linear_in_m(self):
        # Theorem 6: O(m) total messages; observed constant ~2.25.
        m, n = 256 * 256, 256
        rep = replicate("heavy", m, n, trials=TRIALS, seed=SEED)
        q = rep.quantiles("messages", (0.99,))
        assert q[0.99] <= 4 * m


class TestSingleChoiceClassics:
    """The baseline's classical forms anchor the statistics layer."""

    def test_max_load_near_logn_over_loglogn_at_m_eq_n(self):
        n = 1024
        rep = replicate("single", n, n, trials=TRIALS, seed=SEED)
        mean_max = float(rep.max_loads.mean())
        predicted = expected_max_load_single_choice(n, n)
        # ln n / ln ln n = 3.57 at n=1024; the classical max load is
        # (1+o(1)) of it.  Observed mean ~5.3 vs predicted 4.58: the
        # window [0.6x, 2.0x] has >= 1.7x slack on both sides.
        assert 0.6 * predicted <= mean_max <= 2.0 * predicted

    def test_heavy_beats_naive_sqrt_excess(self):
        # Section 1: naive pays Theta(sqrt((m/n) log n)); A_heavy O(1).
        m, n = 256 * 512, 256
        naive = replicate("single", m, n, trials=64, seed=SEED)
        heavy = replicate("heavy", m, n, trials=64, seed=SEED)
        naive_p50 = naive.quantiles("gap", (0.5,))[0.5]
        heavy_p99 = heavy.quantiles("gap", (0.99,))[0.99]
        # Observed: 65 vs 4 — an order of magnitude; require 4x.
        assert naive_p50 >= 4 * heavy_p99


class TestPerballAggregateAgreement:
    """Two-sample check: the aggregate fast path (which the batched
    engine runs) agrees in law with exact per-ball semantics."""

    @pytest.mark.parametrize("name", ["heavy", "single"])
    def test_gap_samples_agree(self, name):
        m, n, t = 20_000, 64, 128
        aggregate = replicate(name, m, n, trials=t, seed=SEED)
        assert aggregate.batched and aggregate.mode == "aggregate"
        perball = allocate_many(
            name, m, n, repeats=t, seed=SEED, mode="perball"
        )
        per_gaps = np.array([r.gap for r in perball])
        # Same root seed, same spawned children — but different draw
        # paths (per-ball choices vs multinomial counts), so the
        # samples are independent draws from the two laws.
        ks = scipy_stats.ks_2samp(aggregate.gaps, per_gaps)
        # Observed p-values ~0.3+; anything above 0.005 passes.  A
        # genuine law mismatch (e.g. an off-by-one in capacity) drives
        # p below 1e-6 at 128 trials.
        assert ks.pvalue > 0.005, (ks, name)
        # Mean agreement, scaled by the standard error of the
        # difference: observed |diff| is ~0.4 SEM (heavy) and ~2.8 SEM
        # (single); 5 SEM is the generous deterministic bound.
        sem_diff = math.sqrt(
            (aggregate.gaps.var(ddof=1) + per_gaps.var(ddof=1)) / t
        )
        assert abs(
            aggregate.gaps.mean() - per_gaps.mean()
        ) <= 5.0 * sem_diff, name

    def test_mean_load_identical_by_conservation(self):
        m, n, t = 20_000, 64, 32
        rep = replicate("heavy", m, n, trials=t, seed=SEED)
        assert np.all(rep.loads.sum(axis=1) == m)
        assert math.isclose(rep.loads.mean(), m / n)
