"""Shared helpers for the benchmark harness.

Each experiment benchmark (one file per DESIGN.md §4 row) does two
things:

1. times the underlying computation with pytest-benchmark, and
2. regenerates the experiment's table (quick scale), logging it under
   the ``repro.benchmarks`` namespace so a
   ``pytest benchmarks/ --benchmark-only --log-cli-level=INFO`` run
   reproduces the paper's rows, and asserting the experiment's
   self-check.

Run ``python -m repro.experiments all --scale full`` for the archived
full-scale tables in EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.experiments import run_experiment
from repro.telemetry import get_logger

_log = get_logger("benchmarks.experiments")


def bench_experiment(benchmark, exp_id: str) -> None:
    """Benchmark an experiment at quick scale and assert its self-check."""
    report = benchmark.pedantic(
        run_experiment,
        args=(exp_id,),
        kwargs={"scale": "quick"},
        rounds=1,
        iterations=1,
    )
    _log.info("%s table:\n%s", exp_id, report.render())
    assert report.passed is True, f"{exp_id} self-check failed"
