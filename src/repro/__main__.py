"""Command-line interface: run any allocation algorithm from the shell.

Usage::

    python -m repro heavy --m 1000000 --n 1000 --seed 7
    python -m repro heavy --m 1000000000000 --n 1024 --mode aggregate
    python -m repro asymmetric --m 1000000 --n 1000
    python -m repro greedy --m 100000 --n 1000 --d 2
    python -m repro compare --m 1000000 --n 1000     # side-by-side table
    python -m repro experiments T2                   # alias for
                                                     # python -m repro.experiments

Prints the :meth:`~repro.result.AllocationResult.describe` block (and
for ``compare`` a one-row-per-algorithm table).
"""

from __future__ import annotations

import argparse
import time
from typing import Callable

import repro
from repro.result import AllocationResult

__all__ = ["main"]


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--m", type=int, required=True, help="number of balls")
    parser.add_argument("--n", type=int, required=True, help="number of bins")
    parser.add_argument("--seed", type=int, default=None)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Parallel balanced allocations (Lenzen-Parter-Yogev, "
        "SPAA 2019) — reproduction CLI.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_heavy = sub.add_parser("heavy", help="A_heavy (Theorem 1)")
    _add_common(p_heavy)
    p_heavy.add_argument(
        "--mode",
        choices=("perball", "aggregate", "engine"),
        default="perball",
    )

    p_asym = sub.add_parser("asymmetric", help="superbin algorithm (Thm 3)")
    _add_common(p_asym)
    p_asym.add_argument(
        "--mode", choices=("perball", "aggregate"), default="perball"
    )

    p_single = sub.add_parser("single", help="naive single-choice baseline")
    _add_common(p_single)
    p_single.add_argument(
        "--mode", choices=("perball", "aggregate"), default="perball"
    )

    p_greedy = sub.add_parser("greedy", help="sequential greedy[d] [BCSV06]")
    _add_common(p_greedy)
    p_greedy.add_argument("--d", type=int, default=2)

    p_trivial = sub.add_parser("trivial", help="deterministic n-round algorithm")
    _add_common(p_trivial)

    p_combined = sub.add_parser("combined", help="Section 3 dispatcher")
    _add_common(p_combined)

    p_compare = sub.add_parser(
        "compare", help="run all parallel algorithms side by side"
    )
    _add_common(p_compare)

    p_exp = sub.add_parser("experiments", help="experiment harness passthrough")
    p_exp.add_argument("args", nargs=argparse.REMAINDER)

    return parser


def _run_single_result(args: argparse.Namespace) -> AllocationResult:
    dispatch: dict[str, Callable[[], AllocationResult]] = {
        "heavy": lambda: repro.run_heavy(
            args.m, args.n, seed=args.seed, mode=args.mode
        ),
        "asymmetric": lambda: repro.run_asymmetric(
            args.m, args.n, seed=args.seed, mode=args.mode
        ),
        "single": lambda: repro.run_single_choice(
            args.m, args.n, seed=args.seed, mode=args.mode
        ),
        "greedy": lambda: repro.run_greedy_d(
            args.m, args.n, args.d, seed=args.seed
        ),
        "trivial": lambda: repro.run_trivial(args.m, args.n, seed=args.seed),
        "combined": lambda: repro.run_combined(args.m, args.n, seed=args.seed),
    }
    return dispatch[args.command]()


def _compare(args: argparse.Namespace) -> None:
    mode = "aggregate" if args.m > 4_000_000 else "perball"
    runs = [
        ("single-choice", lambda: repro.run_single_choice(
            args.m, args.n, seed=args.seed, mode=mode)),
        ("stemann", lambda: repro.run_stemann(args.m, args.n, seed=args.seed)),
        ("batched[2]", lambda: repro.run_batched_dchoice(
            args.m, args.n, 2, seed=args.seed)),
        ("heavy (Thm 1)", lambda: repro.run_heavy(
            args.m, args.n, seed=args.seed, mode=mode)),
        ("asymmetric (Thm 3)", lambda: repro.run_asymmetric(
            args.m, args.n, seed=args.seed, mode=mode)),
    ]
    header = (
        f"{'algorithm':20s} {'max load':>10s} {'gap':>8s} "
        f"{'rounds':>7s} {'messages':>12s} {'time':>8s}"
    )
    print(header)
    print("-" * len(header))
    for name, fn in runs:
        start = time.perf_counter()
        res = fn()
        elapsed = time.perf_counter() - start
        print(
            f"{name:20s} {res.max_load:10,d} {res.gap:+8.1f} "
            f"{res.rounds:7d} {res.total_messages:12,d} {elapsed:7.2f}s"
        )


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "experiments":
        from repro.experiments.__main__ import main as exp_main

        return exp_main(args.args)
    if args.command == "compare":
        _compare(args)
        return 0
    start = time.perf_counter()
    result = _run_single_result(args)
    elapsed = time.perf_counter() - start
    print(result.describe())
    print(f"wall time     : {elapsed:.2f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
