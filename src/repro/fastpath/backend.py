"""Pluggable kernel backends for the bin-side resolution primitives.

Every round of every protocol funnels through the same three hot
primitives: *group requests per bin and accept under capacity*,
*resolve each ball's accepts to one commit*, and *scatter commits into
the load vectors*.  This module is the seam that lets those primitives
be swapped wholesale:

``reference``
    The historical implementation — ``np.lexsort`` grouping,
    stable-``argsort`` commit resolution, ``np.add.at`` scatters.
    Moved here verbatim from ``roundstate.py``/``sampling.py`` so the
    lexsort accept grouping exists in exactly one place.

``fused`` (the default)
    Counting-sort grouping: classify bins with one ``np.bincount``
    (bins whose request count fits capacity accept everything, bins
    with zero capacity reject everything — neither needs a sort), then
    rank only the *contended* remainder with a single ``argsort`` of a
    packed ``(bin << 32) | mark32`` integer key, repairing the rare
    32-bit mark collisions with an exact tie-run re-sort.  Commit
    resolution exploits the ball-major request layout with a segmented
    ``np.minimum.reduceat`` instead of a second lexsort, and integer
    scatters use ``np.bincount`` when dense.  ``O(m + n + c log c)``
    where ``c`` is the contended-request count, versus the reference's
    ``O(m log m)`` always.

The contract, enforced by the backend-equivalence test suite and
in-run by ``benchmarks/run_benchmarks.py``: both backends consume the
identical RNG draw sequence and return **bitwise-identical** results —
only post-draw deterministic computation is reorganized.  The one
deliberate exception is :meth:`KernelBackend.scatter_weights`
(float-weighted scatters), which both backends keep on ``np.add.at``
because ``np.bincount(..., weights=)`` sums in a different association
order and float addition is not associative.

Selection order (first match wins):

1. an explicit ``backend=`` argument (name or instance),
2. the ambient :func:`use_backend` context,
3. the ``REPRO_KERNEL_BACKEND`` environment variable,
4. the module default, ``"fused"``.

The seam is also the plug point ROADMAP item (c) asks for: a future
compiled (numba/C) build registers a third backend here and inherits
the whole equivalence harness.
"""

from __future__ import annotations

import contextvars
import os
import time
from contextlib import contextmanager
from typing import Iterator, Optional, Union

import numpy as np

from repro.telemetry import current_telemetry

__all__ = [
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND",
    "KernelBackend",
    "ReferenceBackend",
    "FusedBackend",
    "ProfilingBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "use_backend",
    "scatter_counts",
    "scatter_weights",
]

#: Environment override: set ``REPRO_KERNEL_BACKEND=reference`` to run
#: an entire process on the historical kernels (CI does, once, to prove
#: the default flip cannot hide behind the equivalence tests).
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"

#: The package-wide default backend name.
DEFAULT_BACKEND = "fused"


class KernelBackend:
    """Interface of the swappable bin-side resolution primitives.

    Implementations must be *value-identical*: for any inputs, every
    method returns (or writes) bitwise-identical results across
    backends.  Backends are stateless and shared; methods must not
    retain references to their arguments.
    """

    #: Registry key; also what ``--backend`` / the env var match.
    name: str = "abstract"

    # -- grouping / accept ----------------------------------------------

    def grouped_accept_with_priorities(
        self,
        choices: np.ndarray,
        capacity: np.ndarray,
        priorities: np.ndarray,
    ) -> np.ndarray:
        """Boolean mask: per bin, accept the ``capacity[b]`` requests
        with the smallest priorities (ties by original index).

        ``capacity`` must already be clamped to ``>= 0`` and cover the
        target space; ``priorities`` aligns with ``choices``.
        """
        raise NotImplementedError

    # -- priority-commit resolution (Lemmas 2/3) ------------------------

    def priority_commit_accept(
        self,
        choices: np.ndarray,
        marks: np.ndarray,
        requester_pos: np.ndarray,
        n_balls: int,
        capacity: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Resolve one degree-``d`` phase (accept by smallest mark up
        to capacity; each ball commits to its smallest-mark accept).

        Returns ``(committed_mask, committed_bin)`` over the
        active-ball axis; ``committed_bin`` is -1 for balls that did
        not commit.
        """
        cap = np.maximum(capacity, 0)
        accepted = self.grouped_accept_with_priorities(choices, cap, marks)
        committed_mask = np.zeros(n_balls, dtype=bool)
        committed_bin = np.full(n_balls, -1, dtype=np.int64)
        if accepted.any():
            acc_ball = requester_pos[accepted]
            acc_bin = choices[accepted]
            acc_mark = marks[accepted]
            winners = self._commit_winners(acc_ball, acc_mark)
            committed_mask[acc_ball[winners]] = True
            committed_bin[acc_ball[winners]] = acc_bin[winners]
        return committed_mask, committed_bin

    def _commit_winners(
        self, acc_ball: np.ndarray, acc_mark: np.ndarray
    ) -> np.ndarray:
        """Indices into the accept arrays: per ball, the accept with
        the smallest mark (ties by original index)."""
        raise NotImplementedError

    # -- multi-accept commit resolution (uniform policy, d > 1) ---------

    def sort_accepts_by_position(
        self, acc_positions: np.ndarray, acc_bins: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return the accepted (position, bin) pairs ordered by
        requester position, stably (equal positions keep their original
        relative order — the accept pass already randomized it)."""
        raise NotImplementedError

    # -- scatters -------------------------------------------------------

    def scatter_counts(self, target: np.ndarray, indices: np.ndarray) -> None:
        """``target[i] += 1`` for each entry of ``indices``, in place.

        Integer addition is associative, so any accumulation order is
        exact — backends may reorganize freely.
        """
        raise NotImplementedError

    def scatter_weights(
        self,
        target: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
    ) -> None:
        """``target[indices[j]] += weights[j]``, in place.

        Float addition is *not* associative, so every backend keeps the
        historical ``np.add.at`` accumulation order — the documented
        exception to the sort-free rewrite.
        """
        np.add.at(target, indices, weights)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<KernelBackend {self.name!r}>"


class ReferenceBackend(KernelBackend):
    """The historical lexsort/argsort/add.at kernels, verbatim.

    This is the single home of the lexsort accept grouping that used to
    exist twice (``sampling.grouped_accept_with_priorities`` and the
    accept pass inside ``roundstate.priority_commit_accept``).
    """

    name = "reference"

    def grouped_accept_with_priorities(self, choices, capacity, priorities):
        k = choices.size
        order = np.lexsort((priorities, choices))
        sorted_bins = choices[order]
        change = np.flatnonzero(np.diff(sorted_bins)) + 1
        starts = np.concatenate(([0], change))
        block_lengths = np.diff(np.concatenate((starts, [k])))
        group_start = np.repeat(starts, block_lengths)
        rank_within_bin = np.arange(k) - group_start
        accepted_sorted = rank_within_bin < capacity[sorted_bins]
        mask = np.zeros(k, dtype=bool)
        mask[order[accepted_sorted]] = True
        return mask

    def _commit_winners(self, acc_ball, acc_mark):
        order2 = np.lexsort((acc_mark, acc_ball))
        b_sorted = acc_ball[order2]
        first = np.concatenate(([True], b_sorted[1:] != b_sorted[:-1]))
        return order2[first]

    def sort_accepts_by_position(self, acc_positions, acc_bins):
        order = np.argsort(acc_positions, kind="stable")
        return acc_positions[order], acc_bins[order]

    def scatter_counts(self, target, indices):
        np.add.at(target, indices, 1)


#: ``2**32`` as a float multiplier, and the packed-key layout constants.
_MARK_SCALE = 4294967296.0
_MARK_MAX = np.uint64(4294967295)
_BIN_SHIFT = np.uint64(32)
#: Bin spaces at or beyond ``2**32`` cannot share a uint64 key with a
#: 32-bit mark; the fused path falls back to the reference sort there.
_MAX_PACKED_BINS = 1 << 32


class FusedBackend(ReferenceBackend):
    """Counting-sort grouping, segmented commit, bincount scatters.

    Inherits the reference implementations as its exact fallback for
    inputs outside the fast path's preconditions (priorities outside
    ``[0, 1)``, bin spaces >= 2**32, unsorted requester positions) —
    the fallback *is* the specification, so those inputs stay
    bitwise-correct by construction.
    """

    name = "fused"

    def grouped_accept_with_priorities(self, choices, capacity, priorities):
        n = capacity.size
        if n >= _MAX_PACKED_BINS:
            return super().grouped_accept_with_priorities(
                choices, capacity, priorities
            )
        counts = np.bincount(choices, minlength=n)
        # Bins whose request count fits capacity accept every request;
        # zero-capacity bins reject every request.  Only the contended
        # remainder (0 < capacity < count) needs within-bin ranking.
        full = counts <= capacity
        mask = full[choices]
        contended = ~full & (capacity > 0)
        sel = contended[choices]
        if not sel.any():
            return mask
        sub_choices = choices[sel]
        sub_prio = priorities[sel]
        if not np.all((sub_prio >= 0.0) & (sub_prio < 1.0)):
            # Arbitrary float priorities (never produced by the RNG
            # draws, but this is a public primitive): the 32-bit mark
            # embedding only covers [0, 1).
            return super().grouped_accept_with_priorities(
                choices, capacity, priorities
            )
        order = self._packed_bin_priority_order(sub_choices, sub_prio)
        ks = sub_choices.size
        sorted_bins = sub_choices[order]
        change = np.flatnonzero(np.diff(sorted_bins)) + 1
        starts = np.concatenate(([0], change))
        block_lengths = np.diff(np.concatenate((starts, [ks])))
        group_start = np.repeat(starts, block_lengths)
        rank_within_bin = np.arange(ks) - group_start
        accepted_sorted = rank_within_bin < capacity[sorted_bins]
        sub_mask = np.zeros(ks, dtype=bool)
        sub_mask[order[accepted_sorted]] = True
        mask[sel] = sub_mask
        return mask

    @staticmethod
    def _packed_bin_priority_order(
        bins: np.ndarray, priorities: np.ndarray
    ) -> np.ndarray:
        """Permutation sorting by (bin, priority, original index) —
        the exact order ``np.lexsort((priorities, bins))`` produces —
        via one argsort of a packed ``(bin << 32) | mark32`` key.

        ``mark32 = floor(priority * 2**32)`` is monotone in the
        priority, so the packed order can differ from the true order
        only inside runs of equal packed keys; those runs are re-sorted
        by the full-precision priority with an explicit original-index
        tiebreak, restoring lexsort's order exactly.  (The ``minimum``
        clamp covers the one float where ``p * 2**32`` rounds up to
        ``2**32``: ``p = 1 - 2**-53``.)
        """
        mark32 = np.minimum(
            (priorities * _MARK_SCALE).astype(np.uint64), _MARK_MAX
        )
        packed = (bins.astype(np.uint64) << _BIN_SHIFT) | mark32
        order = np.argsort(packed)
        sorted_packed = packed[order]
        ties = sorted_packed[1:] == sorted_packed[:-1]
        if ties.any():
            in_run = np.zeros(order.size, dtype=bool)
            in_run[1:] = ties
            in_run[:-1] |= ties
            idx = np.flatnonzero(in_run)
            members = order[idx]
            # Runs are disjoint and appear in increasing packed-key
            # order, so one global lexsort over the tied members —
            # packed key first, then priority, then original index —
            # lands each member back inside its own run, correctly
            # ordered.
            fix = np.lexsort(
                (members, priorities[members], packed[members])
            )
            order[idx] = members[fix]
        return order

    def _commit_winners(self, acc_ball, acc_mark):
        if not np.all(acc_ball[1:] >= acc_ball[:-1]):
            # Requester positions are ball-major in every kernel path
            # (``repeat(arange(u), d)`` filtered by a mask), but the
            # primitive is public: unsorted inputs take the lexsort.
            return super()._commit_winners(acc_ball, acc_mark)
        ka = acc_ball.size
        first = np.concatenate(([True], acc_ball[1:] != acc_ball[:-1]))
        seg_starts = np.flatnonzero(first)
        seg_id = np.cumsum(first) - 1
        min_marks = np.minimum.reduceat(acc_mark, seg_starts)
        # Winner = earliest accept achieving its ball's minimum mark —
        # the same (mark, original index) order the stable lexsort
        # produces.  Comparing against the reduced minima is exact:
        # each minimum *is* one of the compared float values.
        is_min = acc_mark == min_marks[seg_id]
        candidates = np.where(is_min, np.arange(ka), ka)
        return np.minimum.reduceat(candidates, seg_starts)

    def sort_accepts_by_position(self, acc_positions, acc_bins):
        if np.all(acc_positions[1:] >= acc_positions[:-1]):
            # Already ball-major (the boolean accept mask preserves the
            # repeat(arange, d) layout): the stable argsort would be
            # the identity permutation — skip it.
            return acc_positions, acc_bins
        return super().sort_accepts_by_position(acc_positions, acc_bins)

    def scatter_counts(self, target, indices):
        # bincount is a dense O(k + n) pass; add.at is O(k) sparse.
        # Both accumulation orders are exact for integers, so pick by
        # density (the in-place += never copies ``target``).
        if indices.size >= (target.size >> 3):
            target += np.bincount(indices, minlength=target.size)
        else:
            np.add.at(target, indices, 1)


class ProfilingBackend(KernelBackend):
    """A transparent wrapper timing every primitive into telemetry.

    :func:`resolve_backend` installs this around whatever backend it
    resolved whenever the ambient :class:`~repro.telemetry.Telemetry`
    has ``profile_kernels`` enabled.  Each public primitive delegates
    to the wrapped backend between two ``perf_counter`` reads and
    records the elapsed time in the ``kernel.primitive.seconds``
    histogram, labeled by primitive and inner-backend name.

    The wrapper is *value-transparent by construction*: arguments and
    returns pass through untouched and no RNG exists on this path, so
    profiled runs are bitwise-identical to bare ones (the telemetry
    identity tests pin this per backend).  It reports the inner
    backend's ``name`` so result records stay stable under profiling.

    Never registered: wrapping happens at resolution time, and
    resolving an already-wrapped instance never double-wraps.
    """

    def __init__(self, inner: KernelBackend, telemetry) -> None:
        self.inner = inner
        self.telemetry = telemetry
        self.name = inner.name

    def _observe(self, primitive: str, start: float) -> None:
        self.telemetry.observe(
            "kernel.primitive.seconds",
            time.perf_counter() - start,
            primitive=primitive,
            backend=self.inner.name,
        )

    def grouped_accept_with_priorities(self, choices, capacity, priorities):
        start = time.perf_counter()
        out = self.inner.grouped_accept_with_priorities(
            choices, capacity, priorities
        )
        self._observe("grouped_accept", start)
        return out

    def priority_commit_accept(
        self, choices, marks, requester_pos, n_balls, capacity
    ):
        start = time.perf_counter()
        out = self.inner.priority_commit_accept(
            choices, marks, requester_pos, n_balls, capacity
        )
        self._observe("priority_commit", start)
        return out

    def _commit_winners(self, acc_ball, acc_mark):
        return self.inner._commit_winners(acc_ball, acc_mark)

    def sort_accepts_by_position(self, acc_positions, acc_bins):
        start = time.perf_counter()
        out = self.inner.sort_accepts_by_position(acc_positions, acc_bins)
        self._observe("sort_accepts", start)
        return out

    def scatter_counts(self, target, indices):
        start = time.perf_counter()
        self.inner.scatter_counts(target, indices)
        self._observe("scatter_counts", start)

    def scatter_weights(self, target, indices, weights):
        start = time.perf_counter()
        self.inner.scatter_weights(target, indices, weights)
        self._observe("scatter_weights", start)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ProfilingBackend around {self.inner!r}>"


# -- registry and resolution ------------------------------------------

_REGISTRY: dict[str, KernelBackend] = {}

#: Ambient selection installed by :func:`use_backend`; ``None`` defers
#: to the environment variable / module default.
_ACTIVE: contextvars.ContextVar[Optional[KernelBackend]] = (
    contextvars.ContextVar("repro_kernel_backend", default=None)
)

BackendLike = Union[str, KernelBackend, None]


def register_backend(backend: KernelBackend) -> KernelBackend:
    """Add a backend instance to the registry (name collisions replace,
    which is how a test doubles a backend)."""
    _REGISTRY[backend.name] = backend
    return backend


register_backend(ReferenceBackend())
register_backend(FusedBackend())


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_backend(name: str) -> KernelBackend:
    """Look up a backend by name (:data:`BACKEND_ENV_VAR` spelling)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel backend {name!r}; available: "
            + ", ".join(available_backends())
        ) from None


def resolve_backend(backend: BackendLike = None) -> KernelBackend:
    """Resolve the active backend.

    Order: explicit argument (instance or name) > ambient
    :func:`use_backend` context > ``REPRO_KERNEL_BACKEND`` environment
    variable (read at call time, so tests can round-trip it) > the
    ``"fused"`` default.

    When the ambient :class:`~repro.telemetry.Telemetry` asks for
    kernel profiling, the resolved backend comes back wrapped in a
    :class:`ProfilingBackend` bound to it (idempotently — resolving a
    wrapped instance, e.g. through a ``use_backend`` pin taken while
    telemetry was already on, never stacks wrappers).  With telemetry
    off this is one contextvar read and one branch.
    """
    if isinstance(backend, KernelBackend):
        resolved = backend
    elif backend is not None:
        resolved = get_backend(backend)
    else:
        ambient = _ACTIVE.get()
        if ambient is not None:
            resolved = ambient
        else:
            env = os.environ.get(BACKEND_ENV_VAR)
            resolved = (
                get_backend(env) if env else _REGISTRY[DEFAULT_BACKEND]
            )
    telemetry = current_telemetry()
    if (
        telemetry is not None
        and telemetry.profile_kernels
        and not isinstance(resolved, ProfilingBackend)
    ):
        return ProfilingBackend(resolved, telemetry)
    return resolved


@contextmanager
def use_backend(backend: BackendLike = None) -> Iterator[KernelBackend]:
    """Pin the ambient kernel backend for the dynamic extent of the
    ``with`` block (thread- and task-local via :mod:`contextvars`).

    ``use_backend(None)`` pins whatever currently resolves — the
    high-level entry points use that to freeze one selection for a
    whole run.
    """
    resolved = resolve_backend(backend)
    token = _ACTIVE.set(resolved)
    try:
        yield resolved
    finally:
        _ACTIVE.reset(token)


# -- module-level scatter helpers -------------------------------------
#
# For callers that hold no RoundState (the MessageCounter bulk paths,
# protocol-local load updates): dispatch through the ambient backend.


def scatter_counts(
    target: np.ndarray, indices: np.ndarray, backend: BackendLike = None
) -> None:
    """``target[i] += 1`` per index, via the resolved backend."""
    resolve_backend(backend).scatter_counts(target, indices)


def scatter_weights(
    target: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    backend: BackendLike = None,
) -> None:
    """``target[indices[j]] += weights[j]``, via the resolved backend
    (both backends keep ``np.add.at`` order — see the module note on
    float associativity)."""
    resolve_backend(backend).scatter_weights(target, indices, weights)
