#!/usr/bin/env python
"""Explore the lower bound: why no threshold algorithm beats log log(m/n).

Theorem 7 says a single uniform-contact round *must* strand
``Omega(sqrt(Mn)/t)`` balls no matter how cleverly the bins choose
their acceptance thresholds.  This script lets you watch that floor in
action:

1. it plays every threshold adversary in the panel for one round and
   prints the stranded-ball counts against the ``sqrt(Mn)/t`` floor;
2. it iterates the *best* adversary round by round (the recursion that
   drives Theorem 2) and prints the measured trajectory next to the
   paper's ``M_i = (m/n)^(3^-i) n^(1-3^-i)`` induction floor;
3. it contrasts the resulting round lower bound with what ``A_heavy``
   actually uses — showing the upper and lower bounds pinch.

Run:
    python examples/lowerbound_explorer.py [--n 4096] [--ratio 65536]
"""

from __future__ import annotations

import argparse
import math

import numpy as np

import repro
from repro.analysis.theory import theorem7_t
from repro.lowerbound.adversary import ALL_ADVERSARIES
from repro.lowerbound.recursion import trace_recursion
from repro.lowerbound.rejection import measure_rejections


def single_round_panel(m_balls: int, n: int, seed: int) -> None:
    t = theorem7_t(m_balls, n)
    floor = math.sqrt(m_balls * n) / t
    print(
        f"one round: M={m_balls:,} requests, n={n:,} bins, "
        f"capacity budget M+n, t={t}"
    )
    print(f"Theorem 7 floor: ~sqrt(Mn)/t = {floor:,.0f} stranded balls\n")
    print(f"{'adversary':14s} {'stranded (mean of 10)':>22s} {'x floor':>8s}")
    rng = np.random.default_rng(seed)
    for adversary in ALL_ADVERSARIES:
        thresholds = adversary.thresholds(m_balls, n, n, rng)
        outs = measure_rejections(m_balls, n, thresholds, seed=rng, trials=10)
        mean_rej = float(np.mean([o.rejected for o in outs]))
        print(f"{adversary.name:14s} {mean_rej:22,.0f} {mean_rej / floor:8.2f}")
    print(
        "\neven the kindest (uniform) thresholds strand a multiple of the "
        "floor;\nevery other schedule does worse — the bound is universal.\n"
    )


def recursion_view(m: int, n: int, seed: int) -> None:
    trace = trace_recursion(m, n, seed=seed)
    print(f"iterating best-case rounds from m={m:,}, n={n:,}:")
    print(f"{'round':>5s} {'measured M_i':>16s} {'induction floor':>16s}")
    for i, measured in enumerate(trace.measured):
        floor = (
            f"{trace.theoretical[i]:16,.0f}"
            if i < len(trace.theoretical)
            else " " * 16
        )
        print(f"{i:5d} {measured:16,} {floor}")
    print(
        f"\nmeasured rounds to O(n) balls : {trace.rounds_to_On}"
        f"\ninduction lower bound        : {trace.predicted_rounds}"
    )

    heavy = repro.allocate("heavy", m, n, seed=seed, mode="aggregate")
    print(f"A_heavy phase-1 rounds (upper): {heavy.extra['phase1_rounds']}")
    print(
        "\nThe sandwich: no threshold algorithm can finish its bulk phase "
        f"in fewer than ~{trace.predicted_rounds} rounds, and the paper's "
        f"algorithm uses {heavy.extra['phase1_rounds']} — "
        "Theta(log log(m/n)) is exactly right."
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=4096)
    parser.add_argument("--ratio", type=int, default=65536)
    parser.add_argument("--seed", type=int, default=20190416)
    args = parser.parse_args()
    m = args.n * args.ratio
    single_round_panel(args.n * 64, args.n, args.seed)
    recursion_view(m, args.n, args.seed)


if __name__ == "__main__":
    main()
