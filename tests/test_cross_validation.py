"""Cross-validation: engine (reference) vs per-ball vs aggregate paths.

The three execution paths implement the same protocols at different
granularity; they cannot be bitwise identical (different RNG consumption
patterns) but must agree (a) exactly on conserved/structural quantities
and (b) statistically on distributions.

Since the RoundState refactor, every vectorized protocol executes on
the shared kernels in :mod:`repro.fastpath.roundstate`; the
``TestKernelBackendsCrossValidation`` suite asserts each kernel-backed
protocol still matches the agent engine (where one exists) and its own
aggregate mode on load distributions and message counts at pinned
seeds.
"""

import numpy as np
import pytest

import repro
from repro.core import run_asymmetric, run_heavy
from repro.core.heavy_agents import run_heavy_engine, run_light_engine
from repro.light import run_light
from repro.utils.logstar import log_star


class TestHeavyEngineVsVectorized:
    """Engine-mode A_heavy against the vectorized path."""

    M, N = 6000, 32

    def test_both_complete_with_constant_gap(self):
        eng = run_heavy_engine(self.M, self.N, seed=1)
        vec = run_heavy(self.M, self.N, seed=1)
        assert eng.complete and vec.complete
        assert eng.gap <= 8 and vec.gap <= 8

    def test_same_phase1_round_count(self):
        """Phase-1 length is schedule-determined — must match exactly."""
        eng = run_heavy_engine(self.M, self.N, seed=2)
        vec = run_heavy(self.M, self.N, seed=2)
        assert eng.extra["phase1_rounds"] == vec.extra["phase1_rounds"]

    def test_phase1_loads_deterministic_whp(self):
        """Claim 2: after phase 1 every bin holds exactly T_{i0-1} w.h.p.
        — so engine and vectorized phase-1 loads match as vectors."""
        eng = run_heavy_engine(self.M, self.N, seed=3)
        vec = run_heavy(self.M, self.N, seed=3)
        # phase-1 leftovers within noise of each other
        assert (
            abs(eng.extra["phase1_remaining"] - vec.extra["phase1_remaining"])
            <= 0.2 * self.N + 50
        )

    def test_gap_distributions_close(self):
        gaps_e = [run_heavy_engine(3000, 16, seed=s).gap for s in range(6)]
        gaps_v = [run_heavy(3000, 16, seed=s + 50).gap for s in range(6)]
        assert abs(np.mean(gaps_e) - np.mean(gaps_v)) <= 2.5

    def test_message_totals_same_order(self):
        eng = run_heavy_engine(self.M, self.N, seed=4)
        vec = run_heavy(self.M, self.N, seed=4)
        assert 0.5 <= eng.total_messages / vec.total_messages <= 2.0


class TestLightEngineVsVectorized:
    def test_engine_light_meets_theorem5(self):
        out = run_light_engine(300, 300, seed=5)
        assert out.complete
        assert out.loads.max() <= 2
        assert out.rounds <= log_star(300) + 10

    def test_round_counts_comparable(self):
        eng = run_light_engine(400, 400, seed=6)
        vec = run_light(400, 400, seed=6)
        assert abs(eng.rounds - vec.rounds) <= 2

    def test_load_histograms_close(self):
        """Distribution of bin loads (0/1/2 counts) must agree between
        engine and vectorized implementations across seeds."""
        n = 256
        hist_e = np.zeros(3)
        hist_v = np.zeros(3)
        for s in range(5):
            le = run_light_engine(n, n, seed=s).loads
            lv = run_light(n, n, seed=s + 99).loads
            hist_e += np.bincount(le, minlength=3)[:3]
            hist_v += np.bincount(lv, minlength=3)[:3]
        hist_e /= hist_e.sum()
        hist_v /= hist_v.sum()
        assert np.abs(hist_e - hist_v).max() < 0.08


class TestPerballVsAggregate:
    def test_round_counts_match(self):
        m, n = 2**18, 512
        p = run_heavy(m, n, seed=7, mode="perball")
        a = run_heavy(m, n, seed=7, mode="aggregate")
        assert p.extra["phase1_rounds"] == a.extra["phase1_rounds"]
        assert abs(p.rounds - a.rounds) <= 2

    def test_phase1_load_vectors_agree_whp(self):
        """During the strong-concentration rounds nearly every bin fills
        to its threshold in both modes — sorted loads match up to the
        few bins touched by the final noisy rounds."""
        m, n = 2**18, 256
        p = run_heavy(m, n, seed=8, mode="perball", handoff=False)
        a = run_heavy(m, n, seed=8, mode="aggregate", handoff=False)
        sp, sa = np.sort(p.loads), np.sort(a.loads)
        assert np.abs(sp - sa).max() <= 3
        assert abs(p.unallocated - a.unallocated) <= 0.1 * n + 50

    def test_unallocated_histories_close(self):
        m, n = 2**18, 256
        p = run_heavy(m, n, seed=9, mode="perball")
        a = run_heavy(m, n, seed=9, mode="aggregate")
        hp, ha = p.unallocated_history, a.unallocated_history
        for x, y in zip(hp, ha):
            assert abs(x - y) <= 0.05 * max(x, y, 1) + 100


class TestKernelBackendsCrossValidation:
    """Every kernel-backed vectorized protocol vs its reference.

    Pinned seeds throughout: these runs are deterministic, so the
    tolerances encode genuine distributional agreement rather than
    retry luck.
    """

    def test_heavy_perball_vs_engine_messages_and_loads(self):
        m, n = 6000, 32
        eng = run_heavy_engine(m, n, seed=11)
        vec = run_heavy(m, n, seed=11)
        # Same protocol, same accounting rules: totals within 2x.
        assert 0.5 <= eng.total_messages / vec.total_messages <= 2.0
        # Claim 2 concentration: sorted load vectors nearly coincide.
        assert np.abs(np.sort(eng.loads) - np.sort(vec.loads)).max() <= 6

    def test_heavy_aggregate_vs_engine(self):
        m, n = 6000, 32
        eng = run_heavy_engine(m, n, seed=12)
        agg = run_heavy(m, n, seed=12, mode="aggregate")
        assert agg.complete
        assert abs(eng.gap - agg.gap) <= 6
        assert 0.5 <= eng.total_messages / agg.total_messages <= 2.0

    def test_light_vectorized_vs_engine_messages(self):
        n = 300
        eng = run_light_engine(n, n, seed=13)
        vec = run_light(n, n, seed=13)
        assert eng.counter.total > 0
        assert 0.4 <= eng.counter.total / vec.total_messages <= 2.5
        assert abs(int(eng.loads.max()) - vec.max_load) <= 1

    def test_asymmetric_perball_vs_aggregate(self):
        m, n = 60000, 128
        p = run_asymmetric(m, n, seed=14, mode="perball")
        a = run_asymmetric(m, n, seed=14, mode="aggregate")
        # The schedule is oblivious: scheduled round structure matches.
        assert p.extra["scheduled_rounds"] == a.extra["scheduled_rounds"]
        assert [row[0] for row in p.extra["schedule"]] == [
            row[0] for row in a.extra["schedule"]
        ]
        assert abs(p.rounds - a.rounds) <= 2
        assert np.abs(np.sort(p.loads) - np.sort(a.loads)).max() <= 4
        assert 0.9 <= p.total_messages / a.total_messages <= 1.1

    def test_asymmetric_perball_counter_matches_aggregate_bin_stats(self):
        m, n = 60000, 128
        p = run_asymmetric(m, n, seed=15, mode="perball")
        a = run_asymmetric(m, n, seed=15, mode="aggregate")
        assert p.messages is not None
        # Conservation at both granularities: every received message
        # was sent by a ball, and counts match total_messages exactly.
        assert (
            int(p.messages.bin_received.sum()) == int(p.messages.ball_sent.sum())
        )
        assert p.messages.total == p.total_messages
        # Theorem 3's per-bin receive bound: both modes report the same
        # order for the hottest bin.
        per_bin_max_p = p.messages.max_bin_received()
        per_bin_max_a = a.extra["bin_received_max"]
        assert 0.5 <= per_bin_max_p / per_bin_max_a <= 2.0

    def test_stemann_perball_vs_aggregate(self):
        from repro.baselines import run_stemann

        # collision_factor 1.1 keeps the bound tight enough that the
        # all-or-nothing rule actually rejects (multi-round behaviour)
        # without entering the heavy-tailed straggler regime where
        # round counts are high-variance by nature.
        m, n = 60000, 128
        p = run_stemann(m, n, seed=16, mode="perball", collision_factor=1.1)
        a = run_stemann(m, n, seed=16, mode="aggregate", collision_factor=1.1)
        assert p.complete and a.complete
        bound = p.extra["collision_bound"]
        assert bound == a.extra["collision_bound"]
        # The collision bound is a hard cap in both modes.
        assert p.max_load <= bound and a.max_load <= bound
        assert abs(p.rounds - a.rounds) <= 4
        # Load distributions agree within multinomial noise.
        scale = np.sqrt(m / n)
        assert abs(p.max_load - a.max_load) <= 6 * scale
        assert 0.8 <= p.total_messages / a.total_messages <= 1.25

    def test_single_perball_vs_aggregate_occupancy(self):
        from repro.baselines import run_single_choice

        m, n = 200000, 64
        p = run_single_choice(m, n, seed=17, mode="perball")
        a = run_single_choice(m, n, seed=17, mode="aggregate")
        assert p.loads.sum() == a.loads.sum() == m
        assert p.total_messages == a.total_messages == m
        # Multinomial occupancy: sorted loads agree within CLT noise.
        scale = np.sqrt(m / n)
        assert np.abs(np.sort(p.loads) - np.sort(a.loads)).max() <= 6 * scale

    def test_multicontact_d1_matches_heavy_phase1(self):
        from repro.core.multicontact import run_heavy_multicontact

        m, n = 60000, 128
        mc = run_heavy_multicontact(m, n, 1, seed=18, handoff=False)
        hv = run_heavy(m, n, seed=18, handoff=False)
        assert mc.extra["phase1_rounds"] == hv.extra["phase1_rounds"]
        assert (
            abs(mc.extra["phase1_remaining"] - hv.extra["phase1_remaining"])
            <= 0.2 * n + 50
        )
        assert np.abs(np.sort(mc.loads) - np.sort(hv.loads)).max() <= 4

    def test_faulty_zero_faults_matches_heavy_distribution(self):
        from repro.core.faulty import run_heavy_faulty

        m, n = 60000, 128
        f = run_heavy_faulty(m, n, seed=19, crash_prob=0.0, loss_prob=0.0)
        h = run_heavy(m, n, seed=19)
        assert f.complete and h.complete
        assert abs(f.gap - h.gap) <= 4
        assert 0.8 <= f.total_messages / h.total_messages <= 1.25

    @pytest.mark.parametrize(
        "name,options",
        [
            ("heavy", {}),
            ("asymmetric", {}),
            ("stemann", {}),
            ("single", {}),
        ],
    )
    def test_message_accounting_consistent_with_metrics(self, name, options):
        """For every kernel-backed mode: per-round metrics rows exist,
        conserve balls, and never exceed the declared message total."""
        import repro

        for mode in ("perball", "aggregate"):
            res = repro.allocate(name, 40000, 64, seed=20, mode=mode, **options)
            assert res.complete
            rows = res.metrics.rounds
            assert rows, f"{name}[{mode}] recorded no rounds"
            commits = sum(r.commits for r in rows)
            assert commits == 40000 - res.unallocated
            requests = sum(r.requests_sent for r in rows)
            assert requests <= res.total_messages


class TestWorkloadCompatibility:
    """Workload-refactor seed compatibility (ISSUE 3 acceptance bar).

    The uniform workload must be bitwise seed-compatible with the
    pre-workload implementations for every kernel-backed protocol —
    both when no workload is given (nothing changed on that path) and
    when the *explicit* uniform spec is passed (the workload machinery
    must recognize it and stay entirely out of the RNG streams).
    """

    #: (registry name, instance, options) for all ten kernel-backed
    #: protocols, at sizes where every code path (phase 2 handoffs,
    #: cleanup rounds, fallbacks) is reachable.
    KERNEL_CASES = [
        ("heavy", 20_000, 64, {}),
        ("heavy", 20_000, 64, {"mode": "aggregate"}),
        ("combined", 20_000, 64, {}),
        ("asymmetric", 20_000, 64, {}),
        ("asymmetric", 20_000, 64, {"mode": "aggregate"}),
        ("faulty", 20_000, 64, {"crash_prob": 0.01, "loss_prob": 0.02}),
        ("multicontact", 20_000, 64, {"d": 2}),
        ("trivial", 20_000, 64, {}),
        ("light", 100, 64, {}),
        ("single", 20_000, 64, {}),
        ("single", 20_000, 64, {"mode": "aggregate"}),
        ("stemann", 20_000, 64, {}),
        ("stemann", 20_000, 64, {"mode": "aggregate"}),
        ("dchoice", 256, 64, {"d": 2}),
    ]

    @pytest.mark.parametrize(
        "name,m,n,options",
        KERNEL_CASES,
        ids=[
            f"{c[0]}-{c[3].get('mode', 'default')}" for c in KERNEL_CASES
        ],
    )
    def test_uniform_workload_bitwise_identical(self, name, m, n, options):
        base = repro.allocate(name, m, n, seed=20190416, **options)
        explicit = repro.allocate(
            name, m, n, seed=20190416, workload="uniform", **options
        )
        spec_obj = repro.allocate(
            name, m, n, seed=20190416, workload=repro.Workload(), **options
        )
        for other in (explicit, spec_obj):
            assert np.array_equal(base.loads, other.loads), name
            assert base.rounds == other.rounds, name
            assert base.total_messages == other.total_messages, name
            assert base.unallocated == other.unallocated, name

    def test_all_ten_kernel_backed_protocols_covered(self):
        covered = {c[0] for c in self.KERNEL_CASES}
        kernel_backed = {
            s.name for s in repro.list_allocators() if s.kernel_backed
        }
        assert covered == kernel_backed

    @pytest.mark.parametrize("name", ["heavy", "single", "stemann"])
    def test_zipf_perball_vs_aggregate_pinned(self, name):
        """Non-uniform cross-validation: the two granularities must
        agree on conserved quantities and within concentration noise
        on the load shape, at pinned seeds."""
        m, n = 40_000, 64
        options = {"collision_factor": 3.0} if name == "stemann" else {}
        wl = "zipf:1.1+geomw:0.5"
        p = repro.allocate(
            name, m, n, seed=21, mode="perball", workload=wl, **options
        )
        a = repro.allocate(
            name, m, n, seed=21, mode="aggregate", workload=wl, **options
        )
        assert p.complete and a.complete
        assert p.loads.sum() == a.loads.sum() == m
        # Weighted totals: both granularities draw i.i.d. geometric
        # weights (mean 2) for the same m balls.
        tp = p.extra["workload"]["total_weight"]
        ta = a.extra["workload"]["total_weight"]
        assert abs(tp - 2 * m) <= 0.05 * 2 * m
        assert abs(tp - ta) <= 0.05 * tp
        # Load shape within CLT noise of the skewed multinomial.
        scale = np.sqrt(m / n)
        assert abs(p.max_load - a.max_load) <= 8 * scale

    def test_heterogeneous_capacity_cross_granularity_pinned(self):
        m, n = 40_000, 64
        wl = "hotset:0.25:0.5+propcap"
        p = repro.allocate("heavy", m, n, seed=22, mode="perball", workload=wl)
        a = repro.allocate(
            "heavy", m, n, seed=22, mode="aggregate", workload=wl
        )
        assert p.complete and a.complete
        # The capacity profile is deterministic and shared: both modes
        # must shape loads the same way (hot quarter holds ~half).
        hot = n // 4
        for res in (p, a):
            hot_share = res.loads[:hot].sum() / m
            assert 0.35 <= hot_share <= 0.65
        assert p.extra["phase1_rounds"] == a.extra["phase1_rounds"]
