"""repro — Parallel Balanced Allocations: The Heavily Loaded Case.

A full reproduction of Lenzen, Parter & Yogev (SPAA 2019,
arXiv:1904.07532): parallel balls-into-bins algorithms for the
``m >> n`` regime, the supporting synchronous message-passing
simulation substrate, the lower-bound machinery of Theorem 7, the
baselines the paper compares against, and the experiment harness that
regenerates every quantitative claim.

Quickstart
----------
>>> import repro
>>> result = repro.run_heavy(m=1_000_000, n=1_000, seed=7)
>>> result.max_load - result.m // result.n <= 4   # m/n + O(1)
True

Public entry points (all return :class:`repro.AllocationResult`):

========================  ====================================================
``run_heavy``             Algorithm ``A_heavy`` (Theorem 1)
``run_asymmetric``        The constant-round asymmetric algorithm (Theorem 3)
``run_combined``          The combined dispatcher (Section 3 note)
``run_trivial``           Deterministic n-round algorithm
``run_light``             The [LW16]-style light-load subroutine (Theorem 5)
``run_single_choice``     Naive one-shot random allocation
``run_greedy_d``          Sequential greedy[d]  [ABKU99/BCSV06]
``run_parallel_dchoice``  Non-adaptive parallel d-choice  [ACMR98]
``run_stemann``           Collision protocol  [Ste96]
``run_batched_dchoice``   Batched multiple-choice  [BCE+12]
========================  ====================================================
"""

from repro.baselines import (
    run_batched_dchoice,
    run_greedy_d,
    run_parallel_dchoice,
    run_single_choice,
    run_stemann,
)
from repro.core import (
    AsymmetricConfig,
    ExponentSchedule,
    FixedSchedule,
    HeavyConfig,
    PaperSchedule,
    ThresholdSchedule,
    run_asymmetric,
    run_combined,
    run_heavy,
    run_heavy_faulty,
    run_heavy_multicontact,
    run_threshold_protocol,
    run_trivial,
    should_use_trivial,
)
from repro.light import LightConfig, run_light
from repro.result import AllocationResult

__version__ = "1.0.0"

__all__ = [
    "AllocationResult",
    "AsymmetricConfig",
    "ExponentSchedule",
    "FixedSchedule",
    "HeavyConfig",
    "LightConfig",
    "PaperSchedule",
    "ThresholdSchedule",
    "__version__",
    "run_asymmetric",
    "run_batched_dchoice",
    "run_combined",
    "run_greedy_d",
    "run_heavy",
    "run_heavy_faulty",
    "run_heavy_multicontact",
    "run_light",
    "run_parallel_dchoice",
    "run_single_choice",
    "run_stemann",
    "run_threshold_protocol",
    "run_trivial",
    "should_use_trivial",
]
