"""Workload abstraction: non-uniform, weighted, heterogeneous scenarios.

A :class:`Workload` describes one allocation scenario along three
independent axes — the ball→bin choice distribution (uniform, Zipf,
hot-set, explicit), per-ball weights (unit, geometric, explicit), and
per-bin capacity profiles (homogeneous, proportional-to-traffic,
explicit) — and flows through every layer of the package: the sampling
kernels (:mod:`repro.fastpath.sampling`), the shared round kernels
(:class:`repro.fastpath.roundstate.RoundState`), the dispatch API
(``repro.allocate(name, m, n, workload="zipf:1.1")``), the CLI
(``--workload``), the bench harness, and the experiments.

See ``docs/workloads.md`` for the spec grammar, the per-protocol
support matrix, and the uniform-path bitwise-compatibility guarantee.
"""

from repro.workloads.spec import (
    BoundWorkload,
    Workload,
    WorkloadError,
    as_workload,
    bind_workload,
    parse_workload,
)
from repro.workloads.timevarying import (
    TimeVaryingWorkload,
    as_time_varying,
    parse_time_varying,
)

__all__ = [
    "BoundWorkload",
    "TimeVaryingWorkload",
    "Workload",
    "WorkloadError",
    "as_time_varying",
    "as_workload",
    "bind_workload",
    "parse_time_varying",
    "parse_workload",
]
