"""Allocator specifications and the global registry.

Every allocation algorithm in the package — the paper's algorithms in
:mod:`repro.core`, the baselines in :mod:`repro.baselines`, and the
light-load subroutine in :mod:`repro.light` — declares itself to a
single registry via the :func:`register_allocator` decorator.  A
registration records an :class:`AllocatorSpec`: the callable, its
supported execution modes, capability flags, config dataclass, and the
exact set of keyword options it accepts (derived from the function
signature, so the spec can never drift from the implementation).

The registry is what makes the rest of the package uniform:

* :func:`repro.api.dispatch.allocate` validates options against the
  spec and dispatches by name;
* the CLI (``python -m repro``) generates one subcommand per spec,
  with ``--mode`` choices and numeric option flags taken from the
  spec rather than hand-maintained per algorithm;
* :mod:`repro.experiments.parallel` resolves algorithm names (and
  their aliases) through the same table.

This module deliberately imports nothing from the algorithm packages:
they import *it* at definition time, so the registry populates as a
side effect of ``import repro``.
"""

from __future__ import annotations

import dataclasses
import inspect
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

__all__ = [
    "AllocatorSpec",
    "DynamicEntry",
    "ReplicatorEntry",
    "register_allocator",
    "register_dynamic",
    "register_replicator",
    "get_dynamic",
    "get_replicator",
    "get_spec",
    "capability_note",
    "capable_allocators",
    "list_allocators",
    "allocator_names",
    "resolve_name",
]

#: Execution modes any spec may declare.  ``perball`` is the exact
#: per-ball simulation, ``aggregate`` the O(n)-per-round fast path,
#: ``engine`` the object-level reference engine.
KNOWN_MODES = ("perball", "aggregate", "engine")

#: Parameters every runner shares; everything else in the signature
#: becomes a validated option.  ``workload`` is common because the
#: dispatch layer owns its parsing/validation (see
#: :func:`repro.api.dispatch.allocate` and the ``workload_capable``
#: capability flag).
_COMMON_PARAMS = frozenset({"m", "n", "seed", "mode", "config", "workload"})

_INT_ANNOTATION = re.compile(r"\bint\b")
_FLOAT_ANNOTATION = re.compile(r"\bfloat\b")


@dataclass(frozen=True)
class AllocatorSpec:
    """Everything the dispatch layer knows about one algorithm.

    Attributes
    ----------
    name:
        Canonical registry key (also the CLI subcommand).
    runner:
        The underlying entry point (e.g. :func:`repro.run_heavy`).
        Called as ``runner(m, n, seed=..., **options)`` (plus
        ``mode=...`` when ``modes`` is non-empty).
    summary:
        One-line human description, shown by ``python -m repro list``.
    paper_ref:
        Where the algorithm lives in the paper (or the baseline's
        citation).
    aliases:
        Alternate names accepted by :func:`resolve_name` (legacy
        spellings, paper names).
    modes:
        Execution modes the runner's ``mode=`` keyword accepts; empty
        when the runner has no ``mode`` parameter.
    default_mode:
        Mode used when the caller asks for ``"auto"`` on a small
        instance (defaults to the first entry of ``modes``).
    sequential:
        True for non-parallel baselines whose "rounds" are not
        message rounds (greedy[d]).
    fault_tolerant:
        True when the runner models crashes / message loss.
    supports_multicontact:
        True when the runner takes a per-ball fan-out parameter ``d``
        (contacts several bins per round or per ball).
    kernel_backed:
        True when the runner's vectorized modes execute on the shared
        :class:`repro.fastpath.roundstate.RoundState` round kernels
        (sample contacts / group-and-accept / commit-and-revoke) —
        the capability ``mode="auto"`` relies on to pick the ``O(n)``-
        per-round aggregate backend at large ``m``.
    workload_capable:
        True when the runner takes a ``workload=`` keyword (a
        :class:`repro.workloads.Workload` scenario: non-uniform choice
        distributions, weighted balls, heterogeneous capacities).
        Allocators without the flag accept only the uniform workload;
        :func:`~repro.api.dispatch.allocate` raises a clear error
        before calling them with anything else.
    trial_batched:
        True when the allocator registered a trial-batched replication
        adapter (:func:`register_replicator`): one engine invocation
        advances T independent seeded replications in lock-step,
        producing per-trial results bitwise-identical to the sequential
        per-seed loop.  ``repro.replicate`` and the batch helpers
        (``allocate_many``/``sweep``) route through the adapter when
        this flag is set.
    dynamic_capable:
        True when the allocator registered a dynamic-placement adapter
        (:func:`register_dynamic`): the protocol can place a cohort of
        new balls into bins that *already hold residual load*
        (``RoundState(initial_loads=...)``), which is what the dynamic
        subsystem's incremental rebalancing (:mod:`repro.dynamic`)
        runs every epoch.  ``repro.run_dynamic`` accepts only
        allocators with this flag.
    config_type:
        Optional config dataclass accepted via ``config=``; its fields
        may also be passed flat to :func:`~repro.api.dispatch.allocate`
        and are assembled into an instance automatically.
    options:
        Names of keyword options the runner accepts beyond the common
        ``m, n, seed, mode, config`` set.
    config_fields:
        Field names of ``config_type`` (empty when there is none).
    cli_options:
        Subset of options (and config fields) exposable as numeric CLI
        flags: mapping of option name to (type, default).
    """

    name: str
    runner: Callable[..., Any]
    summary: str
    paper_ref: str = ""
    aliases: tuple[str, ...] = ()
    modes: tuple[str, ...] = ()
    default_mode: Optional[str] = None
    sequential: bool = False
    fault_tolerant: bool = False
    supports_multicontact: bool = False
    kernel_backed: bool = False
    workload_capable: bool = False
    trial_batched: bool = False
    dynamic_capable: bool = False
    config_type: Optional[type] = None
    options: tuple[str, ...] = ()
    config_fields: tuple[str, ...] = ()
    cli_options: dict[str, tuple[type, Any]] = field(default_factory=dict)

    @property
    def all_names(self) -> tuple[str, ...]:
        return (self.name,) + self.aliases

    @property
    def valid_options(self) -> tuple[str, ...]:
        """Every keyword ``allocate()`` will accept for this spec."""
        names = list(self.options)
        if self.config_type is not None:
            names.append("config")
            names.extend(f for f in self.config_fields if f not in names)
        return tuple(names)

    def capabilities(self) -> tuple[str, ...]:
        caps = []
        if self.kernel_backed:
            caps.append("kernel")
        if self.workload_capable:
            caps.append("workload")
        if self.trial_batched:
            caps.append("trial_batched")
        if self.dynamic_capable:
            caps.append("dynamic")
        if self.sequential:
            caps.append("sequential")
        if self.fault_tolerant:
            caps.append("fault_tolerant")
        if self.supports_multicontact:
            caps.append("multicontact")
        return tuple(caps)


#: name (normalized) -> canonical spec name.  Populated by registration.
_ALIASES: dict[str, str] = {}
#: canonical name -> spec.
_REGISTRY: dict[str, AllocatorSpec] = {}
#: canonical name -> trial-batched replication adapter.
_REPLICATORS: dict[str, "ReplicatorEntry"] = {}
#: canonical name -> dynamic-placement adapter.
_DYNAMICS: dict[str, "DynamicEntry"] = {}


@dataclass(frozen=True)
class ReplicatorEntry:
    """A registered trial-batched replication adapter.

    Attributes
    ----------
    runner:
        Called as ``runner(m, n, trials=T, seed_seqs=[...], **options)``
        with one spawned :class:`numpy.random.SeedSequence` per trial;
        returns a list of ``T`` :class:`~repro.result.AllocationResult`
        objects, trial ``t`` bitwise-identical to running the
        allocator sequentially with seed ``seed_seqs[t]`` in
        ``equivalent_mode``.
    equivalent_mode:
        The execution mode whose sequential per-seed loop the adapter
        reproduces exactly (``None`` for modeless allocators).  The
        batch helpers only substitute the adapter when the caller's
        resolved mode matches, so batching never changes values.
    options:
        Runner keyword options the adapter also accepts (beyond
        ``workload``); requests with other options fall back to the
        sequential loop.
    workload_capable:
        Whether the adapter takes ``workload=``.
    """

    runner: Callable[..., Any]
    equivalent_mode: Optional[str]
    options: tuple[str, ...]
    workload_capable: bool


@dataclass(frozen=True)
class DynamicEntry:
    """A registered dynamic-placement adapter.

    Attributes
    ----------
    runner:
        Called as ``runner(m, n, initial_loads=..., seed=..., **options)``
        where ``m`` is the size of the *arriving/displaced* cohort and
        ``initial_loads`` the residual per-bin occupancy the cohort is
        placed against; returns a
        :class:`repro.dynamic.placement.DynamicPlacement`.  With
        all-zero ``initial_loads`` the adapter is the allocator's
        one-shot run on the cohort (the anchor the 100%-churn tests
        pin).
    options:
        Extra keyword options the adapter accepts (beyond the reserved
        ``m, n, initial_loads, seed, workload`` set).
    workload_capable:
        Whether the adapter takes ``workload=`` (choice skew and
        capacity profiles; the dynamic runner itself rejects weighted
        workloads, whose departures need per-ball weight identity).
    """

    runner: Callable[..., Any]
    options: tuple[str, ...]
    workload_capable: bool


def _normalize(name: str) -> str:
    """Names are case-insensitive and hyphen/underscore-agnostic."""
    return name.strip().lower().replace("-", "_")


def _flag_type(default: Any, annotation: Any) -> Optional[type]:
    """Numeric CLI type for an option, or None if not flag-friendly."""
    if isinstance(default, bool):
        return None
    if isinstance(default, int):
        return int
    if isinstance(default, float):
        return float
    text = annotation if isinstance(annotation, str) else getattr(
        annotation, "__name__", str(annotation)
    )
    if _INT_ANNOTATION.search(text):
        return int
    if _FLOAT_ANNOTATION.search(text):
        return float
    return None


def _derive_options(
    runner: Callable[..., Any], config_type: Optional[type]
) -> tuple[tuple[str, ...], tuple[str, ...], dict[str, tuple[type, Any]]]:
    """Inspect the runner signature for its option set and CLI flags."""
    sig = inspect.signature(runner)
    options: list[str] = []
    cli: dict[str, tuple[type, Any]] = {}
    for param in sig.parameters.values():
        if param.name in _COMMON_PARAMS:
            continue
        if param.kind in (
            inspect.Parameter.VAR_POSITIONAL,
            inspect.Parameter.VAR_KEYWORD,
        ):
            continue
        options.append(param.name)
        typ = _flag_type(param.default, param.annotation)
        if typ is not None:
            default = param.default
            cli[param.name] = (typ, None if default is inspect.Parameter.empty else default)
    config_fields: tuple[str, ...] = ()
    if config_type is not None:
        fields = dataclasses.fields(config_type)
        config_fields = tuple(f.name for f in fields)
        for f in fields:
            if f.name in cli or f.name in options:
                continue
            default = (
                f.default
                if f.default is not dataclasses.MISSING
                else None
            )
            typ = _flag_type(default, f.type)
            if typ is not None:
                cli[f.name] = (typ, default)
    return tuple(options), config_fields, cli


def register_allocator(
    name: str,
    *,
    summary: str,
    paper_ref: str = "",
    aliases: Iterable[str] = (),
    modes: Iterable[str] = (),
    default_mode: Optional[str] = None,
    sequential: bool = False,
    fault_tolerant: bool = False,
    supports_multicontact: bool = False,
    kernel_backed: bool = False,
    workload_capable: bool = False,
    config_type: Optional[type] = None,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Record the decorated entry point in the global registry.

    Returns the function unchanged: registration is bookkeeping only,
    so ``run_heavy`` et al. stay the canonical implementations and the
    dispatch layer adds no per-call overhead to direct use.
    """
    modes = tuple(modes)
    for mode in modes:
        if mode not in KNOWN_MODES:
            raise ValueError(
                f"unknown mode {mode!r} for allocator {name!r}; "
                f"known modes: {', '.join(KNOWN_MODES)}"
            )
    resolved_default = default_mode or (modes[0] if modes else None)
    if resolved_default is not None and resolved_default not in modes:
        raise ValueError(
            f"default_mode {resolved_default!r} not among modes {modes!r}"
        )

    def decorator(runner: Callable[..., Any]) -> Callable[..., Any]:
        options, config_fields, cli_options = _derive_options(
            runner, config_type
        )
        if workload_capable and "workload" not in inspect.signature(
            runner
        ).parameters:
            raise ValueError(
                f"allocator {name!r} declares workload_capable but its "
                f"runner takes no 'workload' keyword"
            )
        spec = AllocatorSpec(
            name=name,
            runner=runner,
            summary=summary,
            paper_ref=paper_ref,
            aliases=tuple(aliases),
            modes=modes,
            default_mode=resolved_default,
            sequential=sequential,
            fault_tolerant=fault_tolerant,
            supports_multicontact=supports_multicontact,
            kernel_backed=kernel_backed,
            workload_capable=workload_capable,
            config_type=config_type,
            options=options,
            config_fields=config_fields,
            cli_options=cli_options,
        )
        key = _normalize(name)
        existing = _ALIASES.get(key)
        if existing is not None and _REGISTRY[existing].runner is not runner:
            raise ValueError(f"allocator name {name!r} already registered")
        _REGISTRY[key] = spec
        for alias in spec.all_names:
            alias_key = _normalize(alias)
            claimed = _ALIASES.get(alias_key)
            if claimed is not None and claimed != key:
                raise ValueError(
                    f"alias {alias!r} of allocator {name!r} already "
                    f"claimed by {claimed!r}"
                )
            _ALIASES[alias_key] = key
        return runner

    return decorator


def register_replicator(
    name: str,
    *,
    equivalent_mode: Optional[str] = "aggregate",
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Attach a trial-batched replication adapter to a registered spec.

    Must run after the allocator's own :func:`register_allocator`
    decoration (adapters live below their runner in the same module).
    Flips the spec's ``trial_batched`` capability; the adapter's extra
    keyword options and ``workload`` support are derived from its
    signature, exactly as runner options are.

    ``equivalent_mode`` names the execution mode whose sequential
    per-seed loop the adapter reproduces bitwise (``None`` for
    modeless allocators); the dispatching batch helpers refuse to
    substitute the adapter under any other mode.
    """

    def decorator(runner: Callable[..., Any]) -> Callable[..., Any]:
        key = _normalize(name)
        spec = _REGISTRY.get(key)
        if spec is None:
            raise ValueError(
                f"cannot register replicator for unknown allocator {name!r}"
            )
        if equivalent_mode is not None and equivalent_mode not in spec.modes:
            raise ValueError(
                f"replicator for {name!r} claims mode {equivalent_mode!r} "
                f"but the spec supports {spec.modes!r}"
            )
        sig = inspect.signature(runner)
        reserved = {"m", "n", "trials", "seed_seqs", "workload"}
        options = tuple(
            p.name
            for p in sig.parameters.values()
            if p.name not in reserved
            and p.kind
            not in (
                inspect.Parameter.VAR_POSITIONAL,
                inspect.Parameter.VAR_KEYWORD,
            )
        )
        workload_capable = "workload" in sig.parameters
        if workload_capable and not spec.workload_capable:
            raise ValueError(
                f"replicator for {name!r} takes workload= but the spec "
                f"is not workload_capable"
            )
        _REPLICATORS[key] = ReplicatorEntry(
            runner=runner,
            equivalent_mode=equivalent_mode,
            options=options,
            workload_capable=workload_capable,
        )
        _REGISTRY[key] = dataclasses.replace(spec, trial_batched=True)
        return runner

    return decorator


def register_dynamic(
    name: str,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Attach a dynamic-placement adapter to a registered spec.

    Must run after the allocator's own :func:`register_allocator`
    decoration (adapters live below their runner in the same module).
    Flips the spec's ``dynamic_capable`` capability; the adapter's
    extra keyword options and ``workload`` support are derived from
    its signature, exactly as runner options are.
    """

    def decorator(runner: Callable[..., Any]) -> Callable[..., Any]:
        key = _normalize(name)
        spec = _REGISTRY.get(key)
        if spec is None:
            raise ValueError(
                f"cannot register dynamic adapter for unknown "
                f"allocator {name!r}"
            )
        sig = inspect.signature(runner)
        for required in ("initial_loads", "seed"):
            if required not in sig.parameters:
                raise ValueError(
                    f"dynamic adapter for {name!r} must take "
                    f"{required!r}"
                )
        reserved = {"m", "n", "initial_loads", "seed", "workload"}
        options = tuple(
            p.name
            for p in sig.parameters.values()
            if p.name not in reserved
            and p.kind
            not in (
                inspect.Parameter.VAR_POSITIONAL,
                inspect.Parameter.VAR_KEYWORD,
            )
        )
        workload_capable = "workload" in sig.parameters
        if workload_capable and not spec.workload_capable:
            raise ValueError(
                f"dynamic adapter for {name!r} takes workload= but the "
                f"spec is not workload_capable"
            )
        _DYNAMICS[key] = DynamicEntry(
            runner=runner,
            options=options,
            workload_capable=workload_capable,
        )
        _REGISTRY[key] = dataclasses.replace(spec, dynamic_capable=True)
        return runner

    return decorator


def get_replicator(name: str) -> Optional[ReplicatorEntry]:
    """The trial-batched adapter for an allocator, or None."""
    return _REPLICATORS.get(resolve_name(name))


def get_dynamic(name: str) -> Optional[DynamicEntry]:
    """The dynamic-placement adapter for an allocator, or None."""
    return _DYNAMICS.get(resolve_name(name))


def _ensure_populated() -> None:
    """Import the algorithm packages so their registrations run.

    Makes ``from repro.api import allocate`` self-sufficient even when
    the top-level ``repro`` package has not been imported yet.
    """
    import repro.baselines  # noqa: F401
    import repro.core  # noqa: F401
    import repro.light  # noqa: F401


def resolve_name(name: str) -> str:
    """Canonical spec name for ``name`` (alias-, case-, dash-tolerant)."""
    _ensure_populated()
    key = _ALIASES.get(_normalize(name))
    if key is None:
        raise ValueError(
            f"unknown algorithm {name!r}; registered: "
            f"{', '.join(allocator_names())}"
        )
    return key


def get_spec(name: str) -> AllocatorSpec:
    """Look up the spec for an algorithm name or alias."""
    return _REGISTRY[resolve_name(name)]


def allocator_names() -> tuple[str, ...]:
    """Sorted canonical names of every registered allocator."""
    _ensure_populated()
    return tuple(sorted(_REGISTRY))


def list_allocators() -> list[AllocatorSpec]:
    """All registered specs, sorted by canonical name."""
    _ensure_populated()
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def capable_allocators(capability: str) -> list[str]:
    """Canonical names of the specs with a capability flag set.

    ``capability`` is a boolean :class:`AllocatorSpec` field name
    (``workload_capable``, ``dynamic_capable``, ``trial_batched``, ...).
    """
    return [s.name for s in list_allocators() if getattr(s, capability)]


def capability_note(capability: str, names: Optional[Iterable[str]] = None) -> str:
    """The shared capability-rejection suffix of validation errors.

    Every layer that rejects an algorithm for a missing capability —
    ``repro.allocate`` workload validation, the dynamic runner's
    adapter and workload checks, the service — ends its message with
    this same phrase, e.g. ``"workload-capable allocators: heavy,
    single, stemann"``, so users always see which algorithms *would*
    work (consistency pinned by regression test).  ``names`` overrides
    the registry scan for contexts with a narrower capable set (e.g.
    workload support *within* dynamic runs).
    """
    label = capability.replace("_capable", "").replace("_", "-")
    if names is None:
        names = capable_allocators(capability)
    return f"{label}-capable allocators: {', '.join(names)}"
