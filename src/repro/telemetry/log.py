"""Structured logging under the ``repro.*`` namespace.

Every module that wants to narrate progress gets its logger from
:func:`get_logger`, which anchors the name under the ``repro`` root
(``get_logger("benchmarks.kernels")`` → ``repro.benchmarks.kernels``).
Nothing is emitted until :func:`configure_logging` attaches a handler
— the library stays silent by default (a ``NullHandler`` on the root
swallows records so an un-configured import never triggers Python's
"no handler" warning), and the CLI's ``-v/-vv`` flags map to
INFO/DEBUG.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

__all__ = ["configure_logging", "get_logger"]

ROOT = "repro"

# Library default: silent unless the application configures a handler.
logging.getLogger(ROOT).addHandler(logging.NullHandler())


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger under the ``repro`` namespace.

    ``name`` may be empty (the root), a suffix (``"service"``), or an
    already-anchored dotted path (``"repro.service"``).
    """
    if not name or name == ROOT:
        return logging.getLogger(ROOT)
    if name.startswith(ROOT + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT}.{name}")


def configure_logging(
    verbosity: int = 0, *, stream=None
) -> logging.Logger:
    """Attach a stderr handler to the ``repro`` root logger.

    ``verbosity`` 0 keeps the library at WARNING (effectively silent
    in normal operation), 1 enables INFO, 2+ enables DEBUG.
    Idempotent: reconfiguring replaces the handler installed by a
    previous call instead of stacking duplicates.
    """
    level = (
        logging.WARNING
        if verbosity <= 0
        else logging.INFO if verbosity == 1 else logging.DEBUG
    )
    root = logging.getLogger(ROOT)
    root.setLevel(level)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_cli", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    handler._repro_cli = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    return root
