"""Experiment registry and CLI dispatch."""

from __future__ import annotations

from typing import Callable

from repro.experiments.exp_core import exp_f1, exp_f2, exp_t1, exp_t2, exp_t3
from repro.experiments.exp_ext import exp_a3, exp_a4
from repro.experiments.exp_lower import exp_f3, exp_f4, exp_t6, exp_t9
from repro.experiments.exp_misc import (
    exp_a1,
    exp_a2,
    exp_f5,
    exp_t4,
    exp_t5,
    exp_t7,
    exp_t8,
)
from repro.experiments.exp_dynamic import exp_d1, exp_d2
from repro.experiments.exp_replication import exp_r1
from repro.experiments.exp_workloads import exp_w1
from repro.experiments.report import ExperimentReport

__all__ = ["EXPERIMENTS", "get_experiment", "run_experiment"]

ExperimentFn = Callable[..., ExperimentReport]

#: Registry: experiment id -> implementation.  The authoritative
#: experiment table is this mapping itself: ``python -m
#: repro.experiments`` (no argument) lists every id with the first line
#: of its docstring, and each docstring cites the paper claim it
#: reproduces (T* = theorem checks, F* = figure-style shape checks,
#: A* = ablations/extensions, W* = workload scenarios, D* =
#: dynamic/churn scenarios).
EXPERIMENTS: dict[str, ExperimentFn] = {
    "T1": exp_t1,
    "T2": exp_t2,
    "T3": exp_t3,
    "T4": exp_t4,
    "T5": exp_t5,
    "T6": exp_t6,
    "T7": exp_t7,
    "T8": exp_t8,
    "T9": exp_t9,
    "F1": exp_f1,
    "F2": exp_f2,
    "F3": exp_f3,
    "F4": exp_f4,
    "F5": exp_f5,
    "A1": exp_a1,
    "A2": exp_a2,
    "A3": exp_a3,
    "A4": exp_a4,
    "W1": exp_w1,
    "R1": exp_r1,
    "D1": exp_d1,
    "D2": exp_d2,
}


def get_experiment(exp_id: str) -> ExperimentFn:
    """Look up an experiment by id (case-insensitive)."""
    key = exp_id.upper()
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {exp_id!r}; available: "
            f"{', '.join(sorted(EXPERIMENTS))}"
        )
    return EXPERIMENTS[key]


def run_experiment(
    exp_id: str, *, scale: str = "quick", seed: int = 20190416
) -> ExperimentReport:
    """Run one experiment and return its report."""
    from repro.telemetry import get_logger

    if scale not in ("quick", "full"):
        raise ValueError(f"scale must be 'quick' or 'full', got {scale!r}")
    log = get_logger("experiments")
    log.info("running %s (scale=%s, seed=%d)", exp_id.upper(), scale, seed)
    report = get_experiment(exp_id)(scale=scale, seed=seed)
    log.info(
        "%s finished: passed=%s", exp_id.upper(), report.passed
    )
    return report
