"""Equivalence gates for the hardware-limit scaling paths (ISSUE-7).

Three compounding kernel-scaling axes — narrow dtypes + arena reuse,
chunked per-ball sampling, and trial-axis process sharding — each
promise *bitwise identity* with the historical path: the memory and
parallelism wins must change the wall clock and nothing else.  These
tests are that promise, pinned over seeds and workloads:

* ``fill_choices``/``fill_priorities`` consume the RNG stream exactly
  as the one-shot draws they replace, for every tile size;
* chunked/arena/narrowed heavy runs (per-ball and aggregate, uniform
  and zipf+weighted) match the default path on loads, messages,
  rounds, per-round metrics, and weighted loads;
* ``DtypePolicy.narrow`` narrows only where the instance provably
  fits, and narrowed results still surface as int64;
* sharded replication (``workers=4``) is per-trial identical to the
  single-process batch, through ``replicate``, ``allocate_many``, and
  ``sweep``;
* the dynamic epoch loop and allocator service, which now share one
  arena across epochs/flushes, still match their unshared form.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.api.replicate import replicate
from repro.core.heavy import HeavyConfig
from repro.experiments.parallel import _shard_bounds, replicate_sharded
from repro.fastpath import (
    DEFAULT_CHUNK,
    DtypePolicy,
    RoundBuffers,
    fill_choices,
    fill_priorities,
)


# ---------------------------------------------------------------------------
# Sampling kernels: tiled draws consume the stream exactly like one shot
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("chunk", [1, 7, 257, 4096, None])
@pytest.mark.parametrize("k", [0, 1, 1000, 4097])
def test_fill_choices_uniform_stream_equivalence(chunk, k):
    ref = np.random.default_rng(42).integers(0, 50, size=k, dtype=np.int64)
    out = np.empty(k, dtype=np.int32)
    fill_choices(out, 50, np.random.default_rng(42), chunk_size=chunk)
    np.testing.assert_array_equal(ref, out)


@pytest.mark.parametrize("chunk", [3, 1000, None])
def test_fill_choices_pvals_stream_equivalence(chunk):
    # The weighted path draws uniforms and inverts the cdf; tiling must
    # split the same rng.random stream at the same points.
    p = np.random.default_rng(0).random(64)
    p /= p.sum()
    cdf = np.cumsum(p)
    cdf[-1] = 1.0
    ref_draws = np.random.default_rng(9).random(2500)
    ref = np.minimum(np.searchsorted(cdf, ref_draws, side="right"), 63)
    out = np.empty(2500, dtype=np.int64)
    fill_choices(out, 64, np.random.default_rng(9), pvals=p, chunk_size=chunk)
    np.testing.assert_array_equal(ref, out)


def test_fill_priorities_stream_equivalence():
    ref = np.random.default_rng(5).random(3000)
    out = np.empty(3000)
    fill_priorities(out, np.random.default_rng(5))
    np.testing.assert_array_equal(ref, out)


def test_fill_choices_rejects_bad_output():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        fill_choices(np.empty((2, 2), dtype=np.int64), 4, rng)
    with pytest.raises(ValueError):
        fill_choices(np.empty(4, dtype=np.float64), 4, rng)
    with pytest.raises(ValueError):
        fill_choices(np.empty(4, dtype=np.int64), 0, rng)
    with pytest.raises(ValueError):
        # n_bins beyond the output dtype's range must fail loudly.
        fill_choices(np.empty(4, dtype=np.int32), 2**40, rng)


# ---------------------------------------------------------------------------
# Dtype policy: narrow only where the instance provably fits
# ---------------------------------------------------------------------------


def test_dtype_policy_wide_is_default():
    assert DtypePolicy.wide().is_wide
    assert DtypePolicy().is_wide


def test_dtype_policy_narrow_fits():
    p = DtypePolicy.narrow(10**6, 1024)
    assert p.index_dtype == np.dtype(np.int32)
    assert p.load_dtype == np.dtype(np.int32)
    assert p.weight_dtype == np.dtype(np.float64)  # never auto-float32


def test_dtype_policy_narrow_respects_int32_bounds():
    huge = 2**31
    assert DtypePolicy.narrow(huge, 1024).load_dtype == np.dtype(np.int64)
    assert DtypePolicy.narrow(huge, 1024).index_dtype == np.dtype(np.int64)
    assert DtypePolicy.narrow(1000, huge).index_dtype == np.dtype(np.int64)
    # Bin count beyond int32 does not widen the load vector (loads are
    # bounded by m).
    assert DtypePolicy.narrow(1000, huge).load_dtype == np.dtype(np.int32)


def test_dtype_policy_float32_weights_is_explicit_opt_in():
    assert DtypePolicy.narrow(100, 10).weight_dtype == np.dtype(np.float64)
    p = DtypePolicy.narrow(100, 10, float32_weights=True)
    assert p.weight_dtype == np.dtype(np.float32)


# ---------------------------------------------------------------------------
# RoundBuffers arena semantics
# ---------------------------------------------------------------------------


def test_round_buffers_reuses_and_grows():
    buf = RoundBuffers(chunk_size=128)
    a = buf.take("x", 100, np.int64)
    b = buf.take("x", 80, np.int64)
    assert a.base is b.base  # shrinking borrows the same storage
    c = buf.take("x", 1000, np.int64)
    assert c.size == 1000 and c.base is not a.base
    assert buf.nbytes > 0
    buf.clear()
    assert buf.nbytes == 0


def test_round_buffers_dtype_change_replaces():
    buf = RoundBuffers()
    a = buf.take("x", 10, np.int64)
    b = buf.take("x", 10, np.int32)
    assert b.dtype == np.int32 and a.base is not b.base


def test_round_buffers_validates():
    with pytest.raises(ValueError):
        RoundBuffers(chunk_size=0)
    with pytest.raises(ValueError):
        RoundBuffers().take("x", -1, np.int64)
    assert RoundBuffers().chunk_size == DEFAULT_CHUNK


# ---------------------------------------------------------------------------
# Chunked / arena / narrowed heavy runs == default path, bitwise
# ---------------------------------------------------------------------------

_WORKLOADS = [None, "zipf:1.1", "zipf:1.1+geomw:0.5+propcap"]


@pytest.mark.parametrize("workload", _WORKLOADS)
@pytest.mark.parametrize("seed", [0, 7])
def test_chunked_perball_bitwise_equivalent(workload, seed):
    base = repro.allocate(
        "heavy", 60_000, 128, seed=seed, mode="perball", workload=workload
    )
    chunked = repro.allocate(
        "heavy", 60_000, 128, seed=seed, mode="perball", workload=workload,
        chunk_size=4096,
    )
    np.testing.assert_array_equal(base.loads, chunked.loads)
    assert chunked.loads.dtype == np.int64
    assert base.total_messages == chunked.total_messages
    assert base.rounds == chunked.rounds
    assert base.max_load == chunked.max_load
    base_rounds = [
        (r.requests_sent, r.accepts_sent, r.commits, r.max_load)
        for r in base.metrics.rounds
    ]
    chunked_rounds = [
        (r.requests_sent, r.accepts_sent, r.commits, r.max_load)
        for r in chunked.metrics.rounds
    ]
    assert base_rounds == chunked_rounds
    if workload and "geomw" in workload:
        assert (
            base.extra["workload"]["weighted_gap"]
            == chunked.extra["workload"]["weighted_gap"]
        )


def test_chunked_aggregate_bitwise_equivalent():
    base = repro.allocate("heavy", 200_000, 256, seed=1, mode="aggregate")
    chunked = repro.allocate(
        "heavy", 200_000, 256, seed=1, mode="aggregate", chunk_size=1 << 12
    )
    np.testing.assert_array_equal(base.loads, chunked.loads)
    assert base.total_messages == chunked.total_messages


def test_tiny_chunk_size_still_equivalent():
    base = repro.allocate("heavy", 5_000, 16, seed=3)
    chunked = repro.allocate("heavy", 5_000, 16, seed=3, chunk_size=1)
    np.testing.assert_array_equal(base.loads, chunked.loads)


def test_shared_arena_across_sequential_runs():
    arena = RoundBuffers(8192)
    base = repro.allocate("heavy", 50_000, 64, seed=11)
    first = repro.allocate("heavy", 50_000, 64, seed=11, buffers=arena)
    second = repro.allocate("heavy", 50_000, 64, seed=11, buffers=arena)
    np.testing.assert_array_equal(base.loads, first.loads)
    np.testing.assert_array_equal(base.loads, second.loads)
    assert arena.nbytes > 0  # the arena was actually used


def test_per_ball_message_counters_survive_chunking():
    base = repro.allocate("heavy", 20_000, 64, seed=2, mode="perball")
    chunked = repro.allocate(
        "heavy", 20_000, 64, seed=2, mode="perball", chunk_size=1000
    )
    np.testing.assert_array_equal(
        base.messages.ball_sent, chunked.messages.ball_sent
    )
    np.testing.assert_array_equal(
        base.messages.bin_received, chunked.messages.bin_received
    )


def test_track_per_ball_off_chunked_matches_loads():
    cfg = HeavyConfig(track_per_ball=False)
    base = repro.allocate("heavy", 60_000, 128, seed=4, config=cfg)
    chunked = repro.allocate(
        "heavy", 60_000, 128, seed=4, config=cfg, chunk_size=1 << 14
    )
    np.testing.assert_array_equal(base.loads, chunked.loads)
    assert base.total_messages == chunked.total_messages


# ---------------------------------------------------------------------------
# Sharded replication: workers=k == workers=1, per trial
# ---------------------------------------------------------------------------


def test_shard_bounds_cover_contiguously():
    for total, shards in [(8, 4), (10, 3), (3, 8), (1, 1), (256, 4)]:
        bounds = _shard_bounds(total, shards)
        assert bounds[0][0] == 0 and bounds[-1][1] == total
        assert all(b[0] < b[1] for b in bounds)
        assert all(
            bounds[i][1] == bounds[i + 1][0] for i in range(len(bounds) - 1)
        )
        assert len(bounds) == min(shards, total)


@pytest.mark.parametrize("workload", [None, "zipf:1.1"])
def test_replicate_sharded_matches_single_process(workload):
    r1 = replicate(
        "heavy", 40_000, 64, trials=8, seed=13, workload=workload
    )
    r4 = replicate(
        "heavy", 40_000, 64, trials=8, seed=13, workload=workload, workers=4
    )
    assert r1.batched and r4.batched
    np.testing.assert_array_equal(r1.loads, r4.loads)
    np.testing.assert_array_equal(r1.gaps, r4.gaps)
    np.testing.assert_array_equal(r1.rounds, r4.rounds)
    np.testing.assert_array_equal(r1.total_messages, r4.total_messages)
    assert [x.extra["api"]["repeat"] for x in r4.results] == list(range(8))


def test_replicate_sharded_more_workers_than_trials():
    r1 = replicate("heavy", 20_000, 64, trials=3, seed=5)
    r8 = replicate("heavy", 20_000, 64, trials=3, seed=5, workers=8)
    np.testing.assert_array_equal(r1.loads, r8.loads)


def test_replicate_sharded_low_level_entry():
    from repro.utils.seeding import as_seed_sequence

    children = as_seed_sequence(21).spawn(6)
    direct = replicate_sharded(
        "heavy", 30_000, 64, children, None, {}, workers=3
    )
    rep = replicate("heavy", 30_000, 64, trials=6, seed=21)
    for d, r in zip(direct, rep.results):
        np.testing.assert_array_equal(d.loads, r.loads)
        assert d.total_messages == r.total_messages


def test_allocate_many_workers_shard_trial_axis():
    seq = repro.allocate_many("heavy", 30_000, 64, repeats=5, seed=17)
    par = repro.allocate_many(
        "heavy", 30_000, 64, repeats=5, seed=17, workers=4
    )
    assert all(r.extra["api"]["trial_batched"] for r in par)
    for a, b in zip(seq, par):
        np.testing.assert_array_equal(a.loads, b.loads)
        assert a.total_messages == b.total_messages


def test_sweep_workers_shard_each_point_block():
    points = [(20_000, 64), (30_000, 128)]
    seq = repro.sweep("heavy", points, repeats=4, seed=23)
    par = repro.sweep("heavy", points, repeats=4, seed=23, workers=2)
    for a, b in zip(seq, par):
        np.testing.assert_array_equal(a.loads, b.loads)
        assert a.extra["api"]["point"] == b.extra["api"]["point"]
        assert a.extra["api"]["repeat"] == b.extra["api"]["repeat"]


# ---------------------------------------------------------------------------
# Long-lived callers: shared arenas change no value
# ---------------------------------------------------------------------------


def test_run_dynamic_shared_arena_matches_unshared():
    shared = repro.run_dynamic("heavy", 30_000, 64, seed=9, epochs=4)
    unshared = repro.run_dynamic(
        "heavy", 30_000, 64, seed=9, epochs=4, buffers=None
    )
    np.testing.assert_array_equal(shared.loads, unshared.loads)
    assert [r.messages for r in shared.records] == [
        r.messages for r in unshared.records
    ]
    assert (shared.gaps == unshared.gaps).all()


def test_dynamic_adapter_chunked_matches_default():
    initial = np.full(64, 100, dtype=np.int64)
    from repro.core.heavy import dynamic_heavy

    base = dynamic_heavy(10_000, 64, initial_loads=initial, seed=3)
    chunked = dynamic_heavy(
        10_000, 64, initial_loads=initial, seed=3, chunk_size=512
    )
    np.testing.assert_array_equal(base.loads, chunked.loads)
    assert chunked.loads.dtype == np.int64
    assert base.total_messages == chunked.total_messages
    assert base.rounds == chunked.rounds


def test_service_shared_arena_matches_run_dynamic():
    from repro.service import simulate_service

    report = simulate_service(
        "heavy", 20_000, 64, seed=1, epochs=4, churn=0.1, arrivals="bursty"
    )
    dyn = repro.run_dynamic(
        "heavy", 20_000, 64, seed=1, epochs=4, churn=0.1, arrivals="bursty"
    )
    assert [r.messages for r in report.records] == [
        e.messages for e in dyn.records
    ]
    assert report.stats.complete


# ---------------------------------------------------------------------------
# Bench satellites: peak RSS and scale notes
# ---------------------------------------------------------------------------


def test_peak_rss_bytes_positive_and_monotone():
    from repro.api.bench import peak_rss_bytes

    first = peak_rss_bytes()
    assert first > 0
    assert peak_rss_bytes() >= first


def test_instance_for_scale_notes():
    from repro.api.bench import _instance_for
    from repro.api.spec import get_spec

    m, n, note = _instance_for(get_spec("light"), 100_000, 64)
    assert (m, n) == (100_000, 50_000) and "light" in note
    m, n, note = _instance_for(get_spec("dchoice"), 100_000, 64)
    assert (m, n) == (100_000, 25_000) and note is not None
    m, n, note = _instance_for(get_spec("heavy"), 100_000, 64)
    assert (m, n, note) == (100_000, 64, None)
    # Natural-regime requests are left alone, no note.
    m, n, note = _instance_for(get_spec("light"), 1_000, 4_000)
    assert (m, n, note) == (1_000, 4_000, None)


def test_bench_records_carry_rss_and_notes():
    from repro.api.bench import benchmark_registry, render_table

    records = benchmark_registry(
        4_000, 32, seeds=(0,), algorithms=("heavy", "light")
    )
    assert all(r.peak_rss_bytes and r.peak_rss_bytes > 0 for r in records)
    light = [r for r in records if r.algorithm == "light"]
    assert light and light[0].scale_note and light[0].n == 2_000
    table = render_table(records)
    assert "peak rss" in table and "* light:" in table
