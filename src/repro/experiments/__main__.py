"""CLI: ``python -m repro.experiments [all|T1|F3|...] [--scale quick|full]``."""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.registry import EXPERIMENTS, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's quantitative claims.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment id (T1..T9, F1..F5, A1..A4, W1) or 'all'; "
        "omit to list",
    )
    parser.add_argument("--scale", choices=("quick", "full"), default="quick")
    parser.add_argument("--seed", type=int, default=20190416)
    args = parser.parse_args(argv)

    if args.experiment is None:
        print("available experiments:")
        for exp_id, fn in sorted(EXPERIMENTS.items()):
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"  {exp_id:4s} {doc}")
        return 0

    ids = (
        sorted(EXPERIMENTS)
        if args.experiment.lower() == "all"
        else [args.experiment]
    )
    failed = []
    for exp_id in ids:
        start = time.perf_counter()
        report = run_experiment(exp_id, scale=args.scale, seed=args.seed)
        elapsed = time.perf_counter() - start
        print(report.render())
        print(f"({elapsed:.1f}s)")
        print()
        if report.passed is False:
            failed.append(exp_id)
    if failed:
        print(f"FAILED self-checks: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
