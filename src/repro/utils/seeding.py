"""Reproducible randomness plumbing.

Every stochastic component in the package draws from a
:class:`numpy.random.Generator` (PCG64).  A single user-facing ``seed``
is expanded into statistically independent streams via
:meth:`numpy.random.SeedSequence.spawn`, following numpy's recommended
practice for parallel stochastic simulations.  This gives:

* bitwise reproducibility of every experiment from one integer, and
* independence between components (e.g. ball choices vs. bin tie-breaks)
  without correlated low-entropy seeds.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

__all__ = [
    "RngFactory",
    "as_generator",
    "as_seed_sequence",
    "spawn_generators",
]

SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]


def as_seed_sequence(seed: SeedLike) -> np.random.SeedSequence:
    """Coerce any accepted seed form into a root :class:`SeedSequence`.

    This is the package-wide root-seed idiom: ints/None become a fresh
    sequence, an existing sequence passes through, and a Generator is
    *frozen* — one ``integers`` draw becomes the root entropy, so the
    derived sequence is deterministic afterwards while distinct
    generators (or repeated freezes of one generator) stay independent.
    Both :class:`RngFactory` and :func:`repro.api.spawn_seeds` derive
    their roots through this single function.
    """
    if isinstance(seed, np.random.Generator):
        return np.random.SeedSequence(
            int(seed.integers(0, 2**63, dtype=np.int64))
        )
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(seed)


def as_generator(seed: SeedLike) -> np.random.Generator:
    """Coerce any accepted seed form into a Generator.

    Passing an existing Generator returns it unchanged so callers can
    thread one stream through helper functions.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(
    seed: SeedLike, count: int
) -> list[np.random.Generator]:
    """Spawn ``count`` independent generators from one seed.

    If ``seed`` is already a Generator, child streams are derived from
    its internal bit generator's seed sequence when available, otherwise
    from fresh entropy seeded by the generator itself.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children deterministically from the generator's stream.
        child_seeds = seed.integers(0, 2**63, size=count, dtype=np.int64)
        return [np.random.default_rng(int(s)) for s in child_seeds]
    sequence = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


class RngFactory:
    """A hierarchical source of named, independent random streams.

    The simulation engine hands each agent (ball or bin) and each
    subsystem its own stream.  Streams are derived lazily so creating a
    factory for ``m = 10^7`` balls does not allocate ``10^7`` generators
    up front.

    Examples
    --------
    >>> factory = RngFactory(seed=7)
    >>> ball_rng = factory.stream("ball", 12)
    >>> bin_rng = factory.stream("bin", 3)
    >>> factory2 = RngFactory(seed=7)
    >>> bool(factory2.stream("ball", 12).integers(1 << 30)
    ...      == ball_rng.integers(1 << 30))
    True
    """

    def __init__(self, seed: SeedLike = None) -> None:
        self._root = as_seed_sequence(seed)

    def _root_material(self) -> list:
        """Entropy plus spawn key, so spawned children stay distinct.

        A ``SeedSequence.spawn()`` child shares its parent's entropy and
        differs only in ``spawn_key`` — dropping the key would collapse
        every spawned child onto the parent's streams (the bug this
        guards against).  Sequences with an empty spawn key (ints, None,
        fresh sequences) produce exactly the historical material, so
        existing seeds reproduce bitwise.
        """
        entropy = self._root.entropy
        material = list(
            entropy if isinstance(entropy, (list, tuple)) else [entropy]
        )
        material.extend(int(k) for k in self._root.spawn_key)
        return material

    @property
    def root_entropy(self) -> Sequence[int]:
        """The root entropy tuple (for logging/reproduction).

        Includes the spawn key for spawned sequences, so independent
        repetitions of a batch record distinct reproduction tuples.
        """
        return tuple(int(e) for e in self._root_material())

    def stream(self, *key: Union[str, int]) -> np.random.Generator:
        """Return the generator for a hierarchical key.

        Keys mix strings (component names) and ints (agent indices,
        round numbers).  The same key always yields a generator with the
        same state; distinct keys yield independent streams.
        """
        material = self._root_material()
        for part in key:
            if isinstance(part, str):
                material.extend(part.encode("utf-8"))
            elif isinstance(part, (int, np.integer)):
                material.append(int(part) & 0xFFFFFFFF)
                material.append((int(part) >> 32) & 0xFFFFFFFF)
            else:
                raise TypeError(
                    f"stream key parts must be str or int, got {type(part).__name__}"
                )
        return np.random.default_rng(np.random.SeedSequence(material))

    def spawn(self, count: int) -> list[np.random.Generator]:
        """Spawn ``count`` sequential independent generators."""
        return [np.random.default_rng(c) for c in self._root.spawn(count)]

    def child_factory(self, *key: Union[str, int]) -> "RngFactory":
        """A sub-factory rooted at a hierarchical key."""
        material = self._root_material()
        for part in key:
            if isinstance(part, str):
                material.extend(part.encode("utf-8"))
            else:
                material.append(int(part) & 0xFFFFFFFF)
        return RngFactory(np.random.SeedSequence(material))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngFactory(entropy={self.root_entropy})"
