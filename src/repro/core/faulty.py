"""Fault injection: the threshold algorithm under crashes and message loss.

The paper's model is reliable and synchronous.  A natural robustness
question for a downstream user — and a stress test of the *schedule's*
self-stabilizing structure — is what happens when

* **balls crash**: an unallocated ball vanishes with probability
  ``crash_prob`` at the start of each round (its job is gone; the
  allocation of the survivors should be unaffected), and
* **messages are lost**: each request is dropped with probability
  ``loss_prob`` (the ball just retries next round), and each accept is
  dropped with probability ``loss_prob`` — the insidious case, because
  the bin has *reserved capacity for a ball that never learns of it*
  (a "ghost" slot that is never revoked within the protocol).

Why the schedule tolerates this: thresholds ``T_i`` depend only on the
round index, and the estimate recursion m̃ is an *upper* bound on the
surviving ball count under faults, so capacity stays ahead of demand;
ghost slots waste at most a ``loss_prob`` fraction of each round's
capacity, which the next round's fresh capacity covers.  The measured
effect (tests + experiment) is a modest increase in rounds and a gap
that grows with ``loss_prob`` but stays far below the naive baseline.

This module is an extension beyond the paper (documented as such);
``crash_prob = loss_prob = 0`` reproduces ``run_heavy`` exactly in
distribution.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.api.spec import register_allocator
from repro.core.thresholds import PaperSchedule, ThresholdSchedule
from repro.fastpath.roundstate import AcceptDecision, RoundState
from repro.light.virtual import run_light_on_virtual_bins
from repro.result import AllocationResult
from repro.utils.seeding import RngFactory
from repro.utils.validation import check_probability, ensure_m_n
from repro.workloads import bind_workload

__all__ = ["run_heavy_faulty"]


@register_allocator(
    "faulty",
    summary="A_heavy phase 1 under ball crashes and message loss",
    paper_ref="extension (experiment A4)",
    aliases=("heavy_faulty",),
    fault_tolerant=True,
    kernel_backed=True,
    workload_capable=True,
)
def run_heavy_faulty(
    m: int,
    n: int,
    *,
    seed=None,
    crash_prob: float = 0.0,
    loss_prob: float = 0.0,
    schedule: Optional[ThresholdSchedule] = None,
    stop_factor: float = 2.0,
    handoff: bool = True,
    extra_rounds: int = 8,
    workload=None,
) -> AllocationResult:
    """Run phase 1 under fault injection, then a reliable handoff.

    Parameters
    ----------
    m, n:
        Instance size (``m >= n``).
    crash_prob:
        Per-round probability that an unallocated ball disappears.
        Crashed balls are reported via ``extra["crashed"]`` and excluded
        from the allocation (``result.m`` still reports the original
        ``m``; ``unallocated`` counts only surviving stragglers).
    loss_prob:
        Per-message drop probability, applied independently to requests
        and accepts.
    schedule:
        Threshold schedule (default: the paper's).
    extra_rounds:
        Additional threshold rounds granted beyond the schedule's phase
        1 (faults slow progress; the schedule is extended by holding the
        final threshold).
    handoff:
        Run the (reliable) ``A_light`` phase on the stragglers.

    workload:
        Optional :class:`repro.workloads.Workload` (or spec string):
        skewed contact draws, per-bin thresholds scaled by the capacity
        profile, weighted-load tracking.  The fault machinery composes
        with it unchanged (crashes and losses act on balls/messages,
        not on the scenario).  Uniform workloads are
        bitwise-identical to the historical run.

    Notes
    -----
    Ghost slots: a lost accept leaves the bin's capacity consumed
    (``ghost_loads``) while the ball retries.  Final loads exclude
    ghosts — a ghost is an empty reservation, not a ball — but
    capacity checks use ``loads + ghosts``, exactly what a real bin
    (which cannot distinguish a lost accept from a silent ball) would
    enforce.
    """
    m, n = ensure_m_n(m, n, require_heavy=True)
    crash_prob = check_probability(crash_prob, "crash_prob")
    loss_prob = check_probability(loss_prob, "loss_prob")
    factory = RngFactory(seed)
    wl = bind_workload(workload, m, n, factory)
    rng = factory.stream("faulty", "choices")
    fault_rng = factory.stream("faulty", "faults")

    sched = schedule or PaperSchedule(m, n, stop_factor=stop_factor)
    planned = sched.phase1_rounds()
    base_rounds = planned if planned is not None else 64
    rounds_budget = base_rounds + extra_rounds

    state = RoundState(m, n, weights=wl.weights)
    ghosts = np.zeros(n, dtype=np.int64)
    crashed = 0

    while state.rounds < rounds_budget and state.active_count > 0:
        # Crashes: balls vanish before sending (protocol-level policy on
        # the shared state's public active set).
        if crash_prob > 0 and state.active_count:
            alive = fault_rng.random(state.active_count) >= crash_prob
            crashed += int(alive.size - alive.sum())
            state.active = state.active[alive]
        u = state.active_count
        if u == 0:
            break
        # Thresholds: schedule value, held at its last level past the
        # planned horizon (the bins keep their final capacity open).
        threshold = sched.threshold(min(state.rounds, base_rounds - 1))
        batch = state.sample_contacts(rng, pvals=wl.pvals)
        # Request loss: only delivered requests reach their bins (and
        # only they are charged as sent).
        if loss_prob > 0:
            delivered = fault_rng.random(u) >= loss_prob
        else:
            delivered = np.ones(u, dtype=bool)
        batch.requests_sent = int(delivered.sum())
        # Capacity: a real bin cannot distinguish a lost accept from a
        # silent ball, so its residual counts ghosts as occupied.
        capacity = np.maximum(wl.capacities(threshold) - state.loads - ghosts, 0)
        decision = state.group_and_accept(
            batch,
            capacity,
            factory.stream("faulty", "acc", state.rounds),
            delivered=delivered,
        )
        accepted = decision.accepted
        # Accept loss: the bin reserved the slot, the ball never hears.
        if loss_prob > 0 and accepted.any():
            heard = fault_rng.random(int(accepted.sum())) >= loss_prob
            acc_idx = np.flatnonzero(accepted)
            ghost_idx = acc_idx[~heard]
            np.add.at(ghosts, batch.choices[ghost_idx], 1)
            accepted[ghost_idx] = False
        state.commit_and_revoke(
            batch,
            AcceptDecision(accepts_sent=int(accepted.sum()), accepted=accepted),
            threshold=threshold,
        )

    phase1_rounds = state.rounds
    remaining = state.active_count
    loads = state.loads
    metrics = state.metrics
    total_messages = state.total_messages
    extra = {
        "crash_prob": crash_prob,
        "loss_prob": loss_prob,
        "crashed": crashed,
        "ghost_slots": int(ghosts.sum()),
        "phase1_rounds": phase1_rounds,
        "phase1_remaining": remaining,
        "phase2_rounds": 0,
    }
    rounds = phase1_rounds
    unallocated = remaining
    weighted_loads = state.weighted_loads

    if handoff and remaining > 0:
        real_loads, light, vmap = run_light_on_virtual_bins(
            remaining, n, seed=factory.stream("light")
        )
        loads += real_loads
        if weighted_loads is not None:
            np.add.at(
                weighted_loads,
                vmap.to_real(light.assignment),
                wl.weights[state.active],
            )
        rounds += light.rounds
        total_messages += light.total_messages
        extra["phase2_rounds"] = light.rounds
        unallocated = 0

    workload_record = wl.extra_record(weighted_loads)
    if workload_record is not None:
        extra["workload"] = workload_record

    # ``unallocated`` counts surviving stragglers plus crashed balls
    # (both are balls of the original m not present in any bin); a run
    # is complete only when every original ball landed.
    not_placed = unallocated + crashed
    return AllocationResult(
        algorithm=f"heavy-faulty[crash={crash_prob},loss={loss_prob}]",
        m=m,
        n=n,
        loads=loads,
        rounds=rounds,
        metrics=metrics,
        total_messages=total_messages,
        complete=not_placed == 0,
        unallocated=not_placed,
        seed_entropy=factory.root_entropy,
        extra=extra,
    )
