"""Time-varying workloads for the dynamic epoch runner.

A :class:`TimeVaryingWorkload` maps an epoch index to the
:class:`~repro.workloads.spec.Workload` the arriving cohort draws its
contacts from — the non-stationary scenarios of
``repro.run_dynamic(time_workload=...)``:

* ``drift`` — the choice skew drifts across the run: a Zipf exponent
  interpolated linearly from ``start_skew`` (epoch 0, the fill) to
  ``end_skew`` (the final epoch).  The slow-moving-popularity regime:
  every epoch's cohort is a little more (or less) skewed than the
  last.
* ``flash`` — flash crowds: every ``flash_every``-th churn epoch, one
  bin's traffic spikes ``flash_factor``x above uniform (default 100x
  — a single key going viral), with uniform lulls in between.

The mapping is a pure function of the epoch index, so a time-varying
run replays bitwise like any other dynamic run.  Spec strings use the
CLI grammar ``drift:<start>:<end>`` and
``flash:<every>:<factor>[:<bin>]`` (:func:`parse_time_varying`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.workloads.spec import Workload, WorkloadError

__all__ = [
    "TimeVaryingWorkload",
    "as_time_varying",
    "parse_time_varying",
]

#: Accepted time-varying kinds.
TIME_VARYING_KINDS = ("drift", "flash")


@dataclass(frozen=True)
class TimeVaryingWorkload:
    """An epoch-indexed workload schedule (frozen value object)."""

    kind: str = "drift"
    start_skew: float = 1.0
    end_skew: float = 2.0
    flash_every: int = 4
    flash_factor: float = 100.0
    flash_bin: int = 0

    def __post_init__(self) -> None:
        if self.kind not in TIME_VARYING_KINDS:
            raise WorkloadError(
                f"unknown time-varying kind {self.kind!r}; expected one "
                f"of {', '.join(TIME_VARYING_KINDS)}"
            )
        if self.kind == "drift" and (
            self.start_skew <= 0 or self.end_skew <= 0
        ):
            raise WorkloadError(
                "drift skews must be > 0 (Zipf exponents), got "
                f"start={self.start_skew}, end={self.end_skew}"
            )
        if self.flash_every < 2:
            raise WorkloadError(
                f"flash_every must be >= 2, got {self.flash_every}"
            )
        if self.flash_factor < 1.0:
            raise WorkloadError(
                f"flash_factor must be >= 1, got {self.flash_factor}"
            )
        if self.flash_bin < 0:
            raise WorkloadError(
                f"flash_bin must be >= 0, got {self.flash_bin}"
            )

    def workload_at(
        self, epoch: int, epochs: int, n: int
    ) -> Optional[Workload]:
        """The cohort workload for ``epoch`` (0 = fill) of an
        ``epochs``-churn-epoch run on ``n`` bins (None = uniform)."""
        if epoch < 0:
            raise ValueError(f"epoch must be >= 0, got {epoch}")
        if self.kind == "drift":
            frac = epoch / epochs if epochs > 0 else 1.0
            s = self.start_skew + (self.end_skew - self.start_skew) * frac
            return Workload.zipf(s)
        # Flash crowds: uniform lulls, one bin spiked on flash epochs.
        if epoch > 0 and epoch % self.flash_every == 0:
            p = np.ones(n, dtype=np.float64)
            p[self.flash_bin % n] = self.flash_factor
            return Workload.explicit(p / p.sum())
        return None

    def describe(self) -> str:
        if self.kind == "drift":
            return f"drift:{self.start_skew:g}:{self.end_skew:g}"
        return (
            f"flash:{self.flash_every}:{self.flash_factor:g}"
            f":{self.flash_bin}"
        )

    def to_dict(self) -> dict:
        out = {"kind": self.kind}
        if self.kind == "drift":
            out["start_skew"] = self.start_skew
            out["end_skew"] = self.end_skew
        else:
            out["flash_every"] = self.flash_every
            out["flash_factor"] = self.flash_factor
            out["flash_bin"] = self.flash_bin
        return out


def parse_time_varying(text: str) -> TimeVaryingWorkload:
    """Parse ``drift:<start>:<end>`` / ``flash:<every>:<factor>[:<bin>]``."""
    parts = [p for p in text.strip().split(":") if p != ""]
    if not parts:
        raise WorkloadError("empty time-varying workload spec")
    kind = parts[0].lower()
    args = parts[1:]
    try:
        if kind == "drift":
            if len(args) != 2:
                raise WorkloadError(
                    f"drift spec needs drift:<start>:<end>, got {text!r}"
                )
            return TimeVaryingWorkload(
                kind="drift",
                start_skew=float(args[0]),
                end_skew=float(args[1]),
            )
        if kind == "flash":
            if len(args) not in (2, 3):
                raise WorkloadError(
                    "flash spec needs flash:<every>:<factor>[:<bin>], "
                    f"got {text!r}"
                )
            return TimeVaryingWorkload(
                kind="flash",
                flash_every=int(args[0]),
                flash_factor=float(args[1]),
                flash_bin=int(args[2]) if len(args) == 3 else 0,
            )
    except ValueError as exc:
        if isinstance(exc, WorkloadError):
            raise
        raise WorkloadError(
            f"bad time-varying workload spec {text!r}: {exc}"
        ) from None
    raise WorkloadError(
        f"unknown time-varying kind {kind!r}; expected one of "
        f"{', '.join(TIME_VARYING_KINDS)}"
    )


def as_time_varying(
    value: Union[None, str, TimeVaryingWorkload],
) -> Optional[TimeVaryingWorkload]:
    """Coerce None / spec string / instance to a TimeVaryingWorkload."""
    if value is None or isinstance(value, TimeVaryingWorkload):
        return value
    if isinstance(value, str):
        return parse_time_varying(value)
    raise WorkloadError(
        "time_workload must be a TimeVaryingWorkload or spec string, "
        f"got {type(value).__name__}"
    )
