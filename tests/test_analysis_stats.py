"""Tests for repro.analysis.stats."""

import numpy as np
import pytest

from repro.analysis.stats import (
    ConfidenceInterval,
    gap_statistics,
    mean_confidence_interval,
    percentiles,
    sample_quantiles,
    summarize_loads,
    summarize_runs,
)


class TestSummarizeLoads:
    def test_basic(self):
        stats = summarize_loads(np.array([3, 5, 4, 4]))
        assert stats.m == 16
        assert stats.n == 4
        assert stats.max_load == 5
        assert stats.min_load == 3
        assert stats.gap == pytest.approx(1.0)
        assert stats.spread == 2
        assert stats.mean_load == 4.0

    def test_conservation_check(self):
        with pytest.raises(ValueError, match="sums to"):
            summarize_loads(np.array([1, 2, 3]), m=10)

    def test_explicit_m_accepted(self):
        stats = summarize_loads(np.array([1, 2, 3]), m=6)
        assert stats.m == 6

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize_loads(np.array([]))

    def test_2d_raises(self):
        with pytest.raises(ValueError):
            summarize_loads(np.zeros((2, 2)))

    def test_quantiles_present(self):
        stats = summarize_loads(np.arange(100))
        assert stats.quantiles[0.5] == pytest.approx(49.5)
        assert 0.9 in stats.quantiles and 0.99 in stats.quantiles


class TestConfidenceInterval:
    def test_contains(self):
        ci = ConfidenceInterval(mean=10.0, half_width=2.0)
        assert 9.0 in ci
        assert 12.0 in ci
        assert 12.1 not in ci

    def test_low_high(self):
        ci = ConfidenceInterval(mean=5.0, half_width=1.5)
        assert ci.low == 3.5
        assert ci.high == 6.5

    def test_str(self):
        assert "±" in str(ConfidenceInterval(mean=1.0, half_width=0.1))


class TestMeanCI:
    def test_single_value_zero_width(self):
        ci = mean_confidence_interval([4.2])
        assert ci.mean == 4.2
        assert ci.half_width == 0.0

    def test_mean_correct(self):
        ci = mean_confidence_interval([1, 2, 3, 4, 5])
        assert ci.mean == 3.0

    def test_width_shrinks_with_samples(self, rng):
        small = mean_confidence_interval(rng.normal(size=10))
        large = mean_confidence_interval(rng.normal(size=1000))
        assert large.half_width < small.half_width

    def test_coverage(self, rng):
        # ~95% of intervals over N(0,1) samples must contain 0.
        hits = 0
        trials = 400
        for _ in range(trials):
            ci = mean_confidence_interval(rng.normal(size=30))
            hits += 0.0 in ci
        assert hits / trials > 0.90

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])

    def test_bad_level(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([1, 2], level=0.5)


class TestAggregates:
    def test_gap_statistics(self):
        vectors = [np.array([2, 2, 2]), np.array([1, 2, 3])]
        ci = gap_statistics(vectors)
        assert ci.mean == pytest.approx(0.5)  # gaps 0 and 1

    def test_gap_statistics_empty(self):
        with pytest.raises(ValueError):
            gap_statistics([])

    def test_summarize_runs_keys(self):
        out = summarize_runs([np.array([2, 2]), np.array([1, 3])])
        assert set(out) == {"gap", "max_load", "spread"}
        assert out["max_load"].mean == pytest.approx(2.5)


class TestPercentiles:
    def test_default_labels(self):
        out = percentiles(range(101))
        assert set(out) == {"p50", "p95", "p99"}
        assert out["p50"] == pytest.approx(50.0)
        assert out["p95"] == pytest.approx(95.0)
        assert out["p99"] == pytest.approx(99.0)

    def test_consistent_with_sample_quantiles(self):
        rng = np.random.default_rng(7)
        values = rng.exponential(size=500)
        out = percentiles(values, ps=(5.0, 50.0, 97.5))
        qs = sample_quantiles(values, (0.05, 0.5, 0.975))
        assert out["p5"] == qs[0.05]
        assert out["p50"] == qs[0.5]
        assert out["p97.5"] == qs[0.975]

    def test_label_formatting(self):
        out = percentiles([1.0, 2.0], ps=(25,))
        assert list(out) == ["p25"]

    def test_monotone(self):
        values = np.random.default_rng(1).normal(size=200)
        out = percentiles(values)
        assert out["p50"] <= out["p95"] <= out["p99"]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            percentiles([1.0], ps=(101.0,))
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            percentiles([1.0], ps=(-0.5,))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            percentiles([])
