"""Tests for the Theorem 7 rejection machinery."""

import math

import numpy as np
import pytest

from repro.analysis.theory import theorem7_t
from repro.lowerbound.adversary import ALL_ADVERSARIES, uniform_adversary
from repro.lowerbound.rejection import (
    dyadic_class_decomposition,
    measure_rejections,
)


class TestMeasureRejections:
    def test_basic_fields(self, rng):
        thresholds = uniform_adversary.thresholds(10_000, 64, 64, rng)
        (out,) = measure_rejections(10_000, 64, thresholds, seed=1)
        assert out.m_balls == 10_000
        assert 0 <= out.rejected <= 10_000
        assert out.floor > 0
        assert out.t == theorem7_t(10_000, 64)

    def test_trials_count(self, rng):
        thresholds = uniform_adversary.thresholds(1000, 16, 16, rng)
        outs = measure_rejections(1000, 16, thresholds, seed=1, trials=7)
        assert len(outs) == 7

    def test_zero_thresholds_reject_everything(self):
        outs = measure_rejections(
            1000, 16, np.zeros(16, dtype=np.int64), seed=1
        )
        assert outs[0].rejected == 1000
        assert outs[0].overloaded_bins == 16

    def test_huge_thresholds_reject_nothing(self):
        outs = measure_rejections(
            1000, 16, np.full(16, 10**6, dtype=np.int64), seed=1
        )
        assert outs[0].rejected == 0

    def test_theorem7_floor_holds(self, rng):
        """The core lower bound: rejections >= Omega(sqrt(Mn)/t) for
        every adversary in the panel."""
        m_balls, n = 2**18, 1024
        for adversary in ALL_ADVERSARIES:
            thresholds = adversary.thresholds(m_balls, n, n, rng)
            outs = measure_rejections(
                m_balls, n, thresholds, seed=rng, trials=5
            )
            reference = math.sqrt(m_balls * n) / theorem7_t(m_balls, n)
            mean_rej = np.mean([o.rejected for o in outs])
            assert mean_rej >= 0.05 * reference, adversary.name

    def test_deterministic(self, rng):
        thresholds = uniform_adversary.thresholds(5000, 32, 32, rng)
        a = measure_rejections(5000, 32, thresholds, seed=3, trials=2)
        b = measure_rejections(5000, 32, thresholds, seed=3, trials=2)
        assert [x.rejected for x in a] == [x.rejected for x in b]

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            measure_rejections(100, 4, np.zeros(5, dtype=np.int64))
        with pytest.raises(ValueError):
            measure_rejections(100, 4, np.array([-1, 1, 1, 1]))


class TestDyadicDecomposition:
    def test_s_values_formula(self):
        m_balls, n = 6400, 64
        thresholds = np.full(n, 90)
        dec = dyadic_class_decomposition(m_balls, n, thresholds)
        mu = 100.0
        expected = mu + 2 * math.sqrt(mu) - 90
        assert dec.s_values[0] == pytest.approx(expected)

    def test_class_assignment(self):
        m_balls, n = 6400, 64
        mu = 100.0
        # S = 30 -> class floor(log2 30) = 4
        thresholds = np.full(n, int(mu + 2 * math.sqrt(mu) - 30))
        dec = dyadic_class_decomposition(m_balls, n, thresholds)
        assert (dec.class_of_bin == 4).all()
        assert dec.heaviest_class == 4

    def test_star_class(self):
        m_balls, n = 6400, 64
        mu = 100.0
        thresholds = np.full(n, int(math.ceil(mu + 2 * math.sqrt(mu) - 0.5)))
        dec = dyadic_class_decomposition(m_balls, n, thresholds)
        assert set(np.unique(dec.class_of_bin)) <= {-1, -2}

    def test_negative_margin_class(self):
        dec = dyadic_class_decomposition(
            640, 64, np.full(64, 10**6)
        )
        assert (dec.class_of_bin == -2).all()
        assert dec.heaviest_class is None
        assert dec.expected_rejections_bound == 0.0

    def test_mass_sums_match(self, rng):
        m_balls, n = 2**14, 256
        thresholds = uniform_adversary.thresholds(m_balls, n, n, rng)
        dec = dyadic_class_decomposition(m_balls, n, thresholds)
        total_mass = sum(dec.class_mass.values())
        s_pos = dec.s_values[dec.s_values >= 1].sum()
        assert total_mass == pytest.approx(s_pos)

    def test_structural_bound_sqrtMn(self, rng):
        """For budget-respecting thresholds the margin mass is at least
        ~2 sqrt(Mn) - extra (Corollary 1's computation)."""
        m_balls, n = 2**16, 256
        thresholds = uniform_adversary.thresholds(m_balls, n, n, rng)
        dec = dyadic_class_decomposition(m_balls, n, thresholds)
        target = 2 * math.sqrt(m_balls * n) - n
        assert dec.expected_rejections_bound >= 0.9 * target

    def test_window_bounds(self, rng):
        m_balls, n = 2**14, 128
        thresholds = uniform_adversary.thresholds(m_balls, n, 0, rng)
        dec = dyadic_class_decomposition(m_balls, n, thresholds)
        assert dec.k_min <= dec.k_max
        if dec.heaviest_class is not None:
            assert dec.k_min <= dec.heaviest_class <= dec.k_max
