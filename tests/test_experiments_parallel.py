"""Tests for the process-pool repetition runner."""

import pytest

from repro.experiments.parallel import (
    ALGORITHMS,
    parallel_gaps,
    parallel_results,
    run_one,
)


class TestRunOne:
    def test_summary_fields(self):
        out = run_one("heavy", 10_000, 64, seed=1)
        assert set(out) == {
            "algorithm",
            "seed",
            "gap",
            "max_load",
            "rounds",
            "total_messages",
            "complete",
        }
        assert out["complete"] is True
        assert out["seed"] == 1

    def test_kwargs_forwarded(self):
        out = run_one("greedy_d", 10_000, 64, seed=1, d=3)
        assert "greedy[3]" in out["algorithm"]

    def test_aggregate_mode(self):
        out = run_one("heavy", 2**24, 256, seed=1, mode="aggregate")
        assert out["complete"]

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            run_one("quantum", 100, 10, seed=1)


class TestParallelResults:
    def test_results_in_seed_order(self):
        seeds = [3, 1, 7]
        results = parallel_results("heavy", 20_000, 64, seeds, workers=2)
        assert [r["seed"] for r in results] == seeds

    def test_matches_serial(self):
        """Worker-process runs must reproduce in-process runs exactly
        (same seeds, same streams)."""
        seeds = [11, 12]
        par = parallel_results("heavy", 20_000, 64, seeds, workers=2)
        ser = [run_one("heavy", 20_000, 64, s) for s in seeds]
        for a, b in zip(par, ser):
            assert a == b

    def test_single_worker_path(self):
        results = parallel_results("single_choice", 10_000, 32, [1, 2], workers=1)
        assert len(results) == 2

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            parallel_results("heavy", 100, 10, [])

    def test_unknown_algorithm_rejected_early(self):
        with pytest.raises(ValueError):
            parallel_results("quantum", 100, 10, [1])

    def test_all_registered_algorithms_runnable(self):
        for algorithm in ALGORITHMS:
            # light is the lightly-loaded subroutine: it requires
            # m <= capacity * n, so it gets a feasible instance.
            m, n = (24, 16) if algorithm == "light" else (4096, 16)
            out = run_one(algorithm, m, n, seed=5)
            assert out["complete"], algorithm


class TestParallelGaps:
    def test_gaps_positive_for_naive(self):
        gaps = parallel_gaps("single_choice", 100_000, 64, [1, 2, 3], workers=2)
        assert len(gaps) == 3
        assert all(g > 0 for g in gaps)

    def test_heavy_gaps_constant(self):
        gaps = parallel_gaps("heavy", 100_000, 64, [1, 2, 3], workers=2)
        assert max(gaps) <= 8.0
