"""Closed-form predictions from the paper and its cited baselines.

Every experiment prints a *prediction* column sourced from this module
next to the *measured* column from simulation:

* naive single-choice max load: ``m/n + Theta(sqrt(m/n * log n))``
  for ``m >= n log n`` (Section 1), and the classical
  ``log n / log log n`` form at ``m = n``;
* sequential greedy[d] ([BCSV06]): ``m/n + log log n / log d + O(1)``;
* the threshold schedule ``T_i`` and estimate recursion
  ``m̃_{i+1} = m̃_i^{2/3} n^{1/3}`` of Algorithm ``A_heavy`` (Section 3);
* the paper's round bound ``O(log log(m/n) + log* n)`` (Theorem 1);
* the lower-bound recursion ``M_{i+1} = (m/n)^{3^-i} n^{1-3^-i}``
  (proof of Theorem 2) and the single-round rejection floor
  ``Omega(sqrt(Mn)/t)`` with ``t = min{ceil(log n), ceil(log(M/n))+1}``
  (Theorem 7 / Claim 6).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.utils.logstar import log_star
from repro.utils.validation import ensure_m_n

__all__ = [
    "expected_max_load_single_choice",
    "expected_max_load_greedy_d",
    "threshold_schedule",
    "mtilde_schedule",
    "heavy_phase_round_bound",
    "predicted_rounds",
    "rejection_floor",
    "lower_bound_recursion",
    "theorem7_t",
]


def expected_max_load_single_choice(m: int, n: int) -> float:
    """Predicted max load of throwing ``m`` balls into ``n`` bins u.a.r.

    Uses the standard regimes:

    * ``m >= n log n``: ``m/n + sqrt(2 (m/n) log n)`` (Chernoff-tight up
      to the constant; the paper states ``m/n + Theta(sqrt(m/n log n))``);
    * ``m = n`` and below: ``log n / log log n`` scaling.

    The crossover uses the smooth maximum of both forms so sweeps that
    span the boundary stay monotone.
    """
    m, n = ensure_m_n(m, n)
    if n == 1:
        return float(m)
    mean = m / n
    logn = math.log(n)
    heavy = mean + math.sqrt(2.0 * mean * logn)
    if logn > 1.0 and math.log(logn) > 0:
        light = mean + logn / math.log(logn)
    else:
        light = mean + 1.0
    return max(heavy, light)


def expected_max_load_greedy_d(m: int, n: int, d: int) -> float:
    """Predicted max load of the sequential d-choice process.

    [BCSV06]: ``m/n + log log n / log d + O(1)`` for ``d >= 2``; for
    ``d = 1`` falls back to the single-choice prediction.
    """
    m, n = ensure_m_n(m, n)
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    if d == 1:
        return expected_max_load_single_choice(m, n)
    if n <= 2:
        return m / n + 1.0
    return m / n + math.log(math.log(n)) / math.log(d) + 1.0


def threshold_schedule(m: int, n: int, *, max_rounds: Optional[int] = None) -> list[float]:
    """The cumulative thresholds ``T_i = m/n - (m̃_i/n)^{2/3}`` of
    ``A_heavy`` until the estimate drops to ``2n`` (phase-1 exit).

    Returns the (float-valued) schedule; the algorithm itself rounds.
    """
    m, n = ensure_m_n(m, n, require_heavy=True)
    thresholds: list[float] = []
    mtilde = float(m)
    mean = m / n
    rounds = 0
    while mtilde > 2.0 * n:
        thresholds.append(mean - (mtilde / n) ** (2.0 / 3.0))
        mtilde = mtilde ** (2.0 / 3.0) * n ** (1.0 / 3.0)
        rounds += 1
        if max_rounds is not None and rounds >= max_rounds:
            break
        if rounds > 512:  # defensive: the recursion provably terminates
            break
    return thresholds


def mtilde_schedule(m: int, n: int, *, max_rounds: Optional[int] = None) -> list[float]:
    """The estimate sequence ``m̃_0 = m``, ``m̃_{i+1} = m̃_i^{2/3} n^{1/3}``.

    Closed form: ``m̃_i = m^{(2/3)^i} n^{1-(2/3)^i}``.  The list stops
    once ``m̃_i <= 2n`` (inclusive of that final value).
    """
    m, n = ensure_m_n(m, n, require_heavy=True)
    series = [float(m)]
    while series[-1] > 2.0 * n:
        series.append(series[-1] ** (2.0 / 3.0) * n ** (1.0 / 3.0))
        if max_rounds is not None and len(series) - 1 >= max_rounds:
            break
        if len(series) > 513:
            break
    return series


def heavy_phase_round_bound(m: int, n: int) -> int:
    """Number of phase-1 rounds until ``m̃_i <= 2n``.

    Solving ``m^{(2/3)^i} n^{1-(2/3)^i} = 2n`` gives
    ``i = log_{3/2} log(m/n) / log 2`` up to rounding — the concrete
    constant behind Theorem 1's ``O(log log(m/n))``.
    """
    m, n = ensure_m_n(m, n, require_heavy=True)
    return max(0, len(mtilde_schedule(m, n)) - 1)


def predicted_rounds(m: int, n: int, *, light_constant: int = 2) -> float:
    """Theorem 1's round complexity with explicit constants:
    phase-1 rounds (exact from the recursion) plus
    ``log* n + light_constant`` for ``A_light``.
    """
    m, n = ensure_m_n(m, n, require_heavy=True)
    return heavy_phase_round_bound(m, n) + log_star(n) + light_constant


def theorem7_t(m_balls: int, n: int) -> int:
    """Theorem 7's class-count parameter
    ``t = min{ceil(log2 n), ceil(log2(M/n)) + 1}``."""
    m_balls, n = ensure_m_n(m_balls, n)
    if n < 2:
        return 1
    t_n = math.ceil(math.log2(n))
    ratio = max(m_balls / n, 2.0)
    t_m = math.ceil(math.log2(ratio)) + 1
    return max(1, min(t_n, t_m))


def rejection_floor(m_balls: int, n: int, *, p0: float = 0.1) -> float:
    """Theorem 7's rejection floor ``Omega(sqrt(Mn)/t)`` with an explicit
    constant: ``p0 * sqrt(Mn) / (2 (t+1))`` mirrors the pigeonhole step
    after Claim 6 (the heaviest dyadic class captures at least
    ``p0 sqrt(Mn) / (2(t+1))`` expected rejections).

    ``p0`` is the constant-probability overload rate of Claim 5; its
    certified value depends on ``M/n`` via Berry-Esseen, but the paper
    treats it as an absolute constant.  The default 0.1 is conservative
    (the Gaussian tail at ``2 sqrt(2)``... the proof uses
    ``x = 2 sqrt(2)``, giving ``1 - Phi(2.83) ≈ 0.0023``; empirically the
    overload event has probability ≈ 0.023 at ``a = 2``).  Experiments
    treat this as a *shape* reference line, not an absolute one.
    """
    m_balls, n = ensure_m_n(m_balls, n)
    t = theorem7_t(m_balls, n)
    return p0 * math.sqrt(m_balls * n) / (2.0 * (t + 1))


def lower_bound_recursion(m: int, n: int, *, max_rounds: int = 64) -> list[float]:
    """The lower-bound trajectory ``M_i = (m/n)^{3^-i} n^{1 - 3^-i}``...

    Careful: the induction in the proof of Theorem 2 states
    ``M_i := (m/n)^{3^-i} n^{1-3^-i}`` *as a lower bound* on the number
    of balls remaining after round ``i`` for any algorithm in the family,
    with ``M_0 = m``.  The list ends when ``M_i <= C n`` for ``C = 4``
    (the theorem needs ``M_i >> n``); its length-1 is therefore a lower
    bound on the round count, ``Omega(log log(m/n))``.
    """
    m, n = ensure_m_n(m, n, require_heavy=True)
    series = [float(m)]
    ratio = m / n
    i = 0
    while series[-1] > 4.0 * n and i < max_rounds:
        i += 1
        series.append(ratio ** (3.0 ** (-i)) * n ** (1.0 - 3.0 ** (-i)) )
    return series
