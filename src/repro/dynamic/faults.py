"""Epoch-level fault injection for the dynamic/service stack.

:class:`repro.core.faulty.FaultModel` describes the regime; this
module executes it at epoch granularity for
:func:`repro.run_dynamic(fault_model=...)` and
:class:`repro.AllocatorService(fault_model=...)`:

* **bin failures** — at each epoch boundary every healthy bin fails
  with ``bin_fail_prob`` and every failed bin recovers with
  ``bin_recover_prob`` (:meth:`FaultState.step`).  A failed bin is
  *quarantined from placement*: the epoch's contact distribution gets
  its mass zeroed and renormalized over the survivors
  (:meth:`FaultState.quarantined`), so new cohorts route around it
  while its residents stay put — a cordoned bin still serves what it
  holds.  The survivors absorb the failed bins' traffic share, which
  inflates the gap; the service's admission controller reads that
  fault-inflated gap and widens/sheds exactly as it would under any
  other overload (graceful degradation, no special-casing).
* **ack loss** — after a cohort places, each placed ball's accept is
  lost with ``loss_prob`` (:func:`place_with_loss`).  The bin keeps
  the reserved slot as a **ghost** for the rest of the epoch (it
  cannot tell a lost ack from a silent ball — the
  :func:`repro.core.faulty.run_heavy_faulty` semantics at epoch
  granularity) while the lost balls retry against the ghost-inflated
  loads.  Ghost reservations expire at the epoch boundary; retries
  that still fail after ``max_retries`` rounds count as unplaced.

Determinism: every fault draw is gated on its probability being
strictly positive, and loss retries spawn sub-seeds from the epoch's
placement seed only when loss actually occurred — so the all-zero
:class:`FaultModel` is *bitwise-identical* to ``fault_model=None``
(no extra draw, no extra spawn; pinned by the adversarial
determinism tests).
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import Callable, Optional

import numpy as np

from repro.core.faulty import FaultModel
from repro.workloads import Workload

__all__ = ["FaultState", "FaultyPlacement", "place_with_loss"]


class FaultState:
    """Mutable fault bookkeeping for one dynamic run or service."""

    def __init__(self, n: int, model: FaultModel) -> None:
        if n < 1:
            raise ValueError(f"need n >= 1, got {n}")
        if not isinstance(model, FaultModel):
            raise TypeError(
                f"fault_model must be a FaultModel, got {type(model).__name__}"
            )
        self.n = n
        self.model = model
        #: Per-bin failure mask (True = quarantined).
        self.failed = np.zeros(n, dtype=bool)
        #: Cumulative lost acks across the run.
        self.lost_acks = 0

    @property
    def failed_count(self) -> int:
        """Currently failed (quarantined) bins."""
        return int(self.failed.sum())

    @property
    def failed_limit(self) -> int:
        """Most bins allowed down at once (always leaves one alive)."""
        return min(self.n - 1, int(self.model.max_failed_frac * self.n))

    def step(self, rng: np.random.Generator) -> None:
        """One epoch boundary: recoveries first, then fresh failures.

        Draws are gated on the probabilities being positive (the
        zero-fault bitwise guarantee) and failures beyond
        :attr:`failed_limit` are suppressed in draw order, so at least
        ``n - failed_limit >= 1`` bins always accept placements.
        """
        model = self.model
        if model.bin_recover_prob > 0:
            down = np.flatnonzero(self.failed)
            if down.size:
                recovered = rng.random(down.size) < model.bin_recover_prob
                self.failed[down[recovered]] = False
        if model.bin_fail_prob > 0:
            up = np.flatnonzero(~self.failed)
            if up.size:
                fails = rng.random(up.size) < model.bin_fail_prob
                allow = max(0, self.failed_limit - self.failed_count)
                chosen = np.flatnonzero(fails)[:allow]
                self.failed[up[chosen]] = True

    def quarantined(
        self, workload: Optional[Workload], n: int
    ) -> Optional[Workload]:
        """The epoch's workload with failed bins' contact mass zeroed.

        With nothing failed this returns ``workload`` unchanged (the
        no-failures-yet path stays bitwise-benign).  Otherwise the
        choice distribution — uniform when ``workload`` is None —
        is masked and renormalized over the surviving bins; weight and
        capacity axes pass through untouched.
        """
        if not self.failed.any():
            return workload
        base = workload.pvals(n) if workload is not None else None
        p = np.full(n, 1.0 / n) if base is None else base.astype(np.float64)
        p = p.copy()
        p[self.failed] = 0.0
        total = p.sum()
        if total <= 0:  # pragma: no cover - failed_limit guards this
            raise RuntimeError(
                "every bin carrying contact mass has failed; nothing "
                "can accept placements"
            )
        p /= total
        if workload is None:
            return Workload.explicit(p)
        return dc_replace(
            workload, choice="explicit", choice_params=(), choice_pvals=p
        )

    def to_dict(self) -> dict:
        return {
            "model": self.model.to_dict(),
            "failed_bins": self.failed_count,
            "lost_acks": int(self.lost_acks),
        }


@dataclass(frozen=True)
class FaultyPlacement:
    """Aggregate outcome of one cohort placed under ack loss.

    ``cohort`` is the per-bin count of *acked* balls (what joins the
    resident state); ``ghosts`` the per-bin lost-ack reservations
    (capacity the bins held this epoch for balls that never heard —
    expired at the epoch boundary, so they never join ``cohort``).
    """

    cohort: np.ndarray
    ghosts: np.ndarray
    placed: int
    unplaced: int
    rounds: int
    messages: int
    lost_acks: int


def place_with_loss(
    place_fn: Callable,
    count: int,
    initial: np.ndarray,
    place_seed,
    loss_prob: float,
    rng: np.random.Generator,
    *,
    max_retries: int = 16,
) -> FaultyPlacement:
    """Place ``count`` balls under per-ack loss with ghost reservations.

    ``place_fn(count, initial_loads, seed)`` must return a
    :class:`~repro.dynamic.placement.DynamicPlacement`.  The first
    attempt uses ``place_seed`` verbatim — with ``loss_prob`` drawing
    zero losses the outcome is bitwise the lossless placement — and
    each retry round places the lost balls against the ghost-inflated
    loads with a fresh child spawned from ``place_seed`` (spawned only
    when a retry actually happens).  Lost balls still unacked after
    ``max_retries`` retry rounds count as unplaced.
    """
    initial = np.asarray(initial, dtype=np.int64)
    first = place_fn(count, initial, place_seed)
    delta = first.loads.astype(np.int64) - initial
    prev_loads = first.loads.astype(np.int64)
    placed = first.placed
    unplaced = first.unplaced
    rounds = first.rounds
    messages = first.total_messages
    ghosts = np.zeros_like(initial)
    lost_total = 0
    attempt = 0
    while loss_prob > 0:
        lost_bins = rng.binomial(delta, loss_prob).astype(np.int64)
        lost = int(lost_bins.sum())
        if lost == 0:
            break
        lost_total += lost
        ghosts += lost_bins
        placed -= lost
        attempt += 1
        if attempt > max_retries:
            # Give up: the last round's lost balls never hear an ack.
            unplaced += lost
            break
        (retry_seed,) = place_seed.spawn(1)
        nxt = place_fn(lost, prev_loads, retry_seed)
        delta = nxt.loads.astype(np.int64) - prev_loads
        prev_loads = nxt.loads.astype(np.int64)
        placed += nxt.placed
        unplaced += nxt.unplaced
        rounds += nxt.rounds
        messages += nxt.total_messages
    cohort = prev_loads - initial - ghosts
    return FaultyPlacement(
        cohort=cohort,
        ghosts=ghosts,
        placed=placed,
        unplaced=unplaced,
        rounds=rounds,
        messages=messages,
        lost_acks=lost_total,
    )
