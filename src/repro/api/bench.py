"""Registry-driven benchmark harness for the kernel backends.

One function, :func:`benchmark_registry`, walks the allocator registry
(exactly like ``python -m repro list``) and times every registered
allocator in each of its vectorized execution modes at a pinned
instance size and seed set.  It backs two front ends:

* ``python -m repro bench`` — the CLI subcommand, printing a throughput
  table for any instance size;
* ``benchmarks/run_benchmarks.py`` — the pinned-seed perf-trajectory
  runner that writes ``BENCH_kernels.json`` (engine-reference timings
  included, so the kernel-vs-engine speedup is recorded per run).

Timings use ``time.perf_counter`` around the public ``allocate`` entry
point, so what is measured is exactly what a user gets.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Iterable, Optional, Sequence

from repro.api.dispatch import allocate
from repro.api.spec import AllocatorSpec, list_allocators, resolve_name

__all__ = [
    "BenchRecord",
    "benchmark_registry",
    "benchmark_engine_reference",
    "render_table",
]

@dataclass(frozen=True)
class BenchRecord:
    """One timed allocation run."""

    algorithm: str
    mode: Optional[str]
    m: int
    n: int
    seeds: int
    seconds_mean: float
    seconds_min: float
    balls_per_sec: float
    max_load: int
    gap: float
    rounds: int
    total_messages: int
    #: Workload spec string the run used (None = uniform).
    workload: Optional[str] = None

    def to_dict(self) -> dict:
        return asdict(self)


def _instance_for(spec: AllocatorSpec, m: int, n: int) -> tuple[int, int]:
    """Clamp the instance to the allocator's own regime.

    ``light`` requires ``m <= capacity * n`` (Theorem 5); ``dchoice``
    issues one grant per bin per round, so heavy instances need ``~m/n``
    rounds (the point of the baseline, but quadratic wall time) — both
    are benchmarked at their natural near-``n`` scale.  Every other
    allocator takes the requested size as-is.
    """
    if spec.name == "light":
        return min(m, 2 * n), n
    if spec.name == "dchoice":
        return min(m, 4 * n), n
    return m, n


def _bench_modes(spec: AllocatorSpec, include_engine: bool) -> list[Optional[str]]:
    if not spec.modes:
        return [None]
    modes = [mode for mode in spec.modes if mode != "engine" or include_engine]
    return modes


def _time_allocations(
    name: str,
    mode: Optional[str],
    m: int,
    n: int,
    seeds: Sequence[int],
    workload=None,
) -> BenchRecord:
    """Time ``allocate(name, m, n, mode=mode)`` once per pinned seed.

    Wall-time stats aggregate over all seeds; the result stats
    (max_load, gap, rounds, total_messages) are those of the *first*
    seed, so extending the seed list refines the timing without
    changing the recorded outcome — the perf trajectory stays
    like-with-like across PRs.
    """
    if not seeds:
        raise ValueError("need at least one seed to benchmark")
    times = []
    first_result = None
    for seed in seeds:
        start = time.perf_counter()
        result = allocate(name, m, n, seed=seed, mode=mode, workload=workload)
        times.append(time.perf_counter() - start)
        if first_result is None:
            first_result = result
    mean = sum(times) / len(times)
    return BenchRecord(
        algorithm=name,
        mode=mode,
        m=m,
        n=n,
        seeds=len(times),
        seconds_mean=mean,
        seconds_min=min(times),
        balls_per_sec=m / mean if mean > 0 else float("inf"),
        max_load=first_result.max_load,
        gap=first_result.gap,
        rounds=first_result.rounds,
        total_messages=first_result.total_messages,
        workload=first_result.extra.get("api", {}).get("workload"),
    )


def benchmark_registry(
    m: int,
    n: int,
    *,
    seeds: Sequence[int] = (0,),
    algorithms: Optional[Iterable[str]] = None,
    include_engine: bool = False,
    include_sequential: bool = False,
    kernel_only: bool = False,
    workload=None,
) -> list[BenchRecord]:
    """Time every registered allocator at ``(m, n)`` over pinned seeds.

    Parameters
    ----------
    m, n:
        Instance size (clamped per-allocator where the algorithm's
        regime demands it, e.g. ``light``).
    seeds:
        Pinned seeds; each (allocator, mode) runs once per seed and the
        record reports mean/min wall time.
    algorithms:
        Restrict to these registry names/aliases (default: all).
    include_engine:
        Also time ``mode="engine"`` where supported (O(m) Python
        objects — slow; this is the reference the kernels are measured
        against).
    include_sequential:
        Also time sequential baselines (greedy[d]); off by default
        because their Python-loop cost at large ``m`` dwarfs every
        vectorized path.
    kernel_only:
        Restrict to kernel-backed specs (the ``kernel`` capability).
    workload:
        Optional workload spec string (or
        :class:`repro.workloads.Workload`) applied to every run.  A
        non-uniform workload restricts the sweep to workload-capable
        allocators and skips engine modes (which accept only the
        uniform workload).
    """
    from repro.workloads import as_workload

    wl = as_workload(workload)
    wanted: Optional[set[str]] = None
    if algorithms is not None:
        wanted = {resolve_name(a) for a in algorithms}
    records: list[BenchRecord] = []
    for spec in list_allocators():
        if wanted is not None and spec.name not in wanted:
            continue
        if spec.sequential and not include_sequential and wanted is None:
            continue
        if kernel_only and not spec.kernel_backed:
            continue
        if wl is not None and not spec.workload_capable:
            if wanted is not None:
                raise ValueError(
                    f"algorithm {spec.name!r} supports the uniform "
                    f"workload only; drop it from --algorithms or the "
                    f"--workload flag"
                )
            continue
        m_run, n_run = _instance_for(spec, m, n)
        for mode in _bench_modes(
            spec, include_engine and wl is None
        ):
            records.append(
                _time_allocations(
                    spec.name, mode, m_run, n_run, seeds, workload=wl
                )
            )
    return records


def benchmark_engine_reference(
    m: int, n: int, *, seeds: Sequence[int] = (0,)
) -> BenchRecord:
    """Time the object-level agent engine (``heavy`` in engine mode).

    This is the executable specification the vectorized kernels are
    validated against; its wall time is the denominator of the
    kernel-speedup figures in ``BENCH_kernels.json``.
    """
    return _time_allocations("heavy", "engine", m, n, seeds)


def render_table(records: Sequence[BenchRecord]) -> str:
    """Human-readable fixed-width table of benchmark records."""
    with_workload = any(r.workload for r in records)
    header = (
        f"{'algorithm':14s} {'mode':10s} {'m':>12s} {'n':>7s} "
        f"{'time':>9s} {'balls/s':>12s} {'gap':>8s} {'rounds':>7s}"
    )
    if with_workload:
        header += f"  {'workload':s}"
    lines = [header, "-" * len(header)]
    for r in records:
        line = (
            f"{r.algorithm:14s} {(r.mode or '-'):10s} {r.m:12,d} {r.n:7,d} "
            f"{r.seconds_mean:8.3f}s {r.balls_per_sec:12,.0f} "
            f"{r.gap:+8.1f} {r.rounds:7d}"
        )
        if with_workload:
            line += f"  {r.workload or 'uniform'}"
        lines.append(line)
    return "\n".join(lines)
