"""``A_light`` — the [LW16]-style light-load subroutine (Theorem 5).

The paper invokes the symmetric algorithm of Lenzen & Wattenhofer
[LW16] as a black box with these guarantees (w.h.p.): it places ``n``
balls into ``n`` bins within ``log* n + O(1)`` rounds with maximum bin
load 2 using ``O(n)`` messages.  This subpackage provides:

* :func:`repro.light.lw16.run_light` — a vectorized collision protocol
  meeting those guarantees empirically (the substitution is documented
  in DESIGN.md §2): in round ``r`` each unallocated ball contacts
  ``k_r`` uniformly random bins with a tower-growing schedule
  ``k_1 = 1, k_{r+1} = 2^{k_r}``; bins accept up to their residual
  capacity (2), balls commit to one acceptor and revoke the rest.
* :class:`repro.light.virtual.VirtualBinMap` — the virtual-bin reduction
  used by ``A_heavy``'s phase 2: each real bin simulates ``g`` virtual
  bins, so a virtual max load of 2 becomes at most ``2 g`` extra real
  load.
"""

from repro.light.lw16 import (
    LightConfig,
    LightOutcome,
    run_light,
    run_light_allocation,
)
from repro.light.virtual import VirtualBinMap, run_light_on_virtual_bins

__all__ = [
    "LightConfig",
    "LightOutcome",
    "VirtualBinMap",
    "run_light",
    "run_light_allocation",
    "run_light_on_virtual_bins",
]
