"""Backend equivalence gates (ISSUE-8): ``fused`` == ``reference``.

The pluggable kernel backend seam promises that the fused
counting-sort kernels are a pure reorganization of post-draw
computation: for any inputs, the ``fused`` backend returns
**bitwise-identical** results to the historical lexsort ``reference``
kernels.  These tests are that promise, at three levels:

* raw primitives (grouping, priority commit, scatters), pinned and
  hypothesis-randomized over instance size, capacity profile, and
  priority skew — including the adversarial edges the packed-key trick
  must survive (priorities at/above 1.0, the ``1 - 2**-53`` float whose
  ``* 2**32`` rounds up, duplicated priorities, unsorted requester
  positions, zero capacity);
* end-to-end runs: perball and aggregate granularities, trial-batched
  replication, residual ``initial_loads``, zipf+weighted workloads,
  dynamic churn, per-ball message counters;
* the selection machinery: explicit ``backend=`` > ``use_backend``
  context > ``REPRO_KERNEL_BACKEND`` env > the ``fused`` default, plus
  the CLI ``--backend`` round-trip — and a pinned-seed regression
  proving the default flip changed no values.
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.fastpath.backend import (
    BACKEND_ENV_VAR,
    DEFAULT_BACKEND,
    FusedBackend,
    ReferenceBackend,
    available_backends,
    get_backend,
    resolve_backend,
    scatter_counts,
    scatter_weights,
    use_backend,
)
from repro.fastpath.roundstate import priority_commit_accept
from repro.fastpath.sampling import grouped_accept_with_priorities

REFERENCE = get_backend("reference")
FUSED = get_backend("fused")

COMMON = settings(
    deadline=None,
    max_examples=30,
    suppress_health_check=[HealthCheck.too_slow],
)


def _instance(seed, k, n, cap_hi, skew, quantize):
    """One randomized grouping instance: skewed choices, a random
    capacity profile, and priorities with optional duplicate mass."""
    rng = np.random.default_rng(seed)
    if skew > 0:
        p = (1.0 + np.arange(n)) ** -skew
        p /= p.sum()
        choices = rng.choice(n, size=k, p=p)
    else:
        choices = rng.integers(0, n, size=k)
    capacity = rng.integers(0, cap_hi + 1, size=n)
    priorities = rng.random(k)
    if quantize:
        # Coarse quantization mass-produces exact duplicates — the
        # packed-key tie-repair path must restore lexsort order.
        priorities = np.round(priorities, 2)
    return choices.astype(np.int64), capacity.astype(np.int64), priorities


class TestGroupingPrimitive:
    @COMMON
    @given(
        seed=st.integers(0, 2**31),
        k=st.integers(0, 3000),
        n=st.integers(1, 200),
        cap_hi=st.integers(0, 60),
        skew=st.floats(0.0, 2.0),
        quantize=st.booleans(),
    )
    def test_fused_matches_reference(self, seed, k, n, cap_hi, skew, quantize):
        choices, capacity, priorities = _instance(
            seed, k, n, cap_hi, skew, quantize
        )
        ref = REFERENCE.grouped_accept_with_priorities(
            choices, capacity, priorities
        )
        fus = FUSED.grouped_accept_with_priorities(
            choices, capacity, priorities
        )
        np.testing.assert_array_equal(ref, fus)

    def test_priorities_at_one_take_the_fallback(self):
        # p = 1.0 would overflow the 32-bit mark into the bin field;
        # the fused path must detect it and still match reference.
        choices = np.array([0, 0, 0, 1, 1], dtype=np.int64)
        capacity = np.array([1, 1], dtype=np.int64)
        priorities = np.array([1.0, 0.5, 0.0, 1.0, 1.0])
        ref = REFERENCE.grouped_accept_with_priorities(
            choices, capacity, priorities
        )
        fus = FUSED.grouped_accept_with_priorities(
            choices, capacity, priorities
        )
        np.testing.assert_array_equal(ref, fus)

    def test_rounds_up_to_2_32_edge_float(self):
        # 1 - 2**-53 is the one float in [0, 1) whose * 2**32 rounds
        # UP to exactly 2**32 under round-to-even; the mark clamp must
        # keep it inside 32 bits.
        edge = 1.0 - 2.0**-53
        choices = np.zeros(4, dtype=np.int64)
        capacity = np.array([2], dtype=np.int64)
        priorities = np.array([edge, 0.25, edge, 0.75])
        ref = REFERENCE.grouped_accept_with_priorities(
            choices, capacity, priorities
        )
        fus = FUSED.grouped_accept_with_priorities(
            choices, capacity, priorities
        )
        np.testing.assert_array_equal(ref, fus)

    def test_empty_and_zero_capacity(self):
        empty = np.array([], dtype=np.int64)
        cap = np.array([3, 0], dtype=np.int64)
        for backend in (REFERENCE, FUSED):
            out = backend.grouped_accept_with_priorities(
                empty, cap, np.array([])
            )
            assert out.size == 0
        choices = np.array([1, 1, 0], dtype=np.int64)
        zero_cap = np.zeros(2, dtype=np.int64)
        ref = REFERENCE.grouped_accept_with_priorities(
            choices, zero_cap, np.array([0.1, 0.2, 0.3])
        )
        fus = FUSED.grouped_accept_with_priorities(
            choices, zero_cap, np.array([0.1, 0.2, 0.3])
        )
        np.testing.assert_array_equal(ref, fus)
        assert not fus.any()

    def test_public_wrapper_dispatches_explicit_backend(self):
        choices, capacity, priorities = _instance(5, 500, 32, 20, 1.1, False)
        via_name = grouped_accept_with_priorities(
            choices, capacity, priorities, backend="reference"
        )
        via_instance = grouped_accept_with_priorities(
            choices, capacity, priorities, backend=FUSED
        )
        np.testing.assert_array_equal(via_name, via_instance)


class TestCommitPrimitive:
    @COMMON
    @given(
        seed=st.integers(0, 2**31),
        u=st.integers(1, 800),
        d=st.integers(1, 4),
        n=st.integers(1, 100),
        cap_hi=st.integers(0, 40),
        quantize=st.booleans(),
    )
    def test_fused_matches_reference(self, seed, u, d, n, cap_hi, quantize):
        rng = np.random.default_rng(seed)
        k = u * d
        choices = rng.integers(0, n, size=k)
        marks = rng.random(k)
        if quantize:
            marks = np.round(marks, 2)
        requester_pos = np.repeat(np.arange(u, dtype=np.int64), d)
        capacity = rng.integers(0, cap_hi + 1, size=n)
        ref = REFERENCE.priority_commit_accept(
            choices, marks, requester_pos, u, capacity
        )
        fus = FUSED.priority_commit_accept(
            choices, marks, requester_pos, u, capacity
        )
        np.testing.assert_array_equal(ref[0], fus[0])
        np.testing.assert_array_equal(ref[1], fus[1])

    def test_unsorted_requesters_take_the_fallback(self):
        # The kernels always present ball-major requester positions,
        # but the primitive is public: a shuffled layout must still
        # match reference exactly (fused falls back to the lexsort).
        rng = np.random.default_rng(11)
        k, u, n = 600, 300, 16
        choices = rng.integers(0, n, size=k)
        marks = rng.random(k)
        requester_pos = rng.permutation(np.repeat(np.arange(u), 2))
        capacity = rng.integers(0, 30, size=n)
        ref = REFERENCE.priority_commit_accept(
            choices, marks, requester_pos, u, capacity
        )
        fus = FUSED.priority_commit_accept(
            choices, marks, requester_pos, u, capacity
        )
        np.testing.assert_array_equal(ref[0], fus[0])
        np.testing.assert_array_equal(ref[1], fus[1])

    def test_module_function_is_backend_dispatched(self):
        rng = np.random.default_rng(3)
        choices = rng.integers(0, 8, size=40)
        marks = rng.random(40)
        pos = np.repeat(np.arange(20, dtype=np.int64), 2)
        cap = np.full(8, 2, dtype=np.int64)
        ref = priority_commit_accept(
            choices, marks, pos, 20, cap, backend="reference"
        )
        fus = priority_commit_accept(
            choices, marks, pos, 20, cap, backend="fused"
        )
        np.testing.assert_array_equal(ref[0], fus[0])
        np.testing.assert_array_equal(ref[1], fus[1])


class TestScatterPrimitives:
    @pytest.mark.parametrize("k,n", [(0, 4), (3, 1000), (5000, 64), (512, 4096)])
    def test_scatter_counts_dense_and_sparse(self, k, n):
        # k >= n/8 takes the fused bincount path, below it add.at —
        # both must equal the reference exactly (integer associativity).
        rng = np.random.default_rng(k + n)
        indices = rng.integers(0, n, size=k)
        ref = np.zeros(n, dtype=np.int64)
        fus = np.zeros(n, dtype=np.int64)
        REFERENCE.scatter_counts(ref, indices)
        FUSED.scatter_counts(fus, indices)
        np.testing.assert_array_equal(ref, fus)

    def test_scatter_weights_keeps_add_at_order(self):
        # Float scatters are the documented exception: both backends
        # must produce the *identical float result*, which pins them to
        # the same accumulation order.
        rng = np.random.default_rng(0)
        indices = rng.integers(0, 32, size=4000)
        weights = rng.random(4000)
        ref = np.zeros(32)
        fus = np.zeros(32)
        REFERENCE.scatter_weights(ref, indices, weights)
        FUSED.scatter_weights(fus, indices, weights)
        np.testing.assert_array_equal(ref, fus)

    def test_module_level_helpers_dispatch(self):
        rng = np.random.default_rng(1)
        indices = rng.integers(0, 16, size=200)
        a = np.zeros(16, dtype=np.int64)
        b = np.zeros(16, dtype=np.int64)
        scatter_counts(a, indices, backend="reference")
        scatter_counts(b, indices, backend="fused")
        np.testing.assert_array_equal(a, b)
        wa = np.zeros(16)
        wb = np.zeros(16)
        w = rng.random(200)
        scatter_weights(wa, indices, w, backend="reference")
        scatter_weights(wb, indices, w, backend="fused")
        np.testing.assert_array_equal(wa, wb)


def _run_pair(name, m, n, **kwargs):
    with use_backend("reference"):
        ref = repro.allocate(name, m, n, **kwargs)
    with use_backend("fused"):
        fus = repro.allocate(name, m, n, **kwargs)
    return ref, fus


def _assert_identical(ref, fus):
    np.testing.assert_array_equal(ref.loads, fus.loads)
    assert ref.max_load == fus.max_load
    assert ref.gap == fus.gap
    assert ref.rounds == fus.rounds
    assert ref.total_messages == fus.total_messages
    assert ref.complete == fus.complete


class TestEndToEndEquivalence:
    @pytest.mark.parametrize(
        "name,mode",
        [
            ("heavy", "perball"),
            ("heavy", "aggregate"),
            ("combined", "perball"),
            ("combined", "aggregate"),
            ("asymmetric", "perball"),
            ("asymmetric", "aggregate"),
            ("single", "perball"),
            ("single", "aggregate"),
            ("stemann", "perball"),
            ("stemann", "aggregate"),
            ("trivial", None),
            ("batched", None),
        ],
    )
    def test_granularities(self, name, mode):
        kwargs = {"seed": 3}
        if mode is not None:
            kwargs["mode"] = mode
        ref, fus = _run_pair(name, 20_000, 64, **kwargs)
        _assert_identical(ref, fus)

    def test_zipf_weighted_workload(self):
        ref, fus = _run_pair(
            "heavy", 20_000, 64, seed=5,
            workload="zipf:1.1+geomw:0.5+propcap",
        )
        _assert_identical(ref, fus)
        # Weighted statistics are float accumulations — bitwise
        # equality here is what the scatter_weights exception buys.
        assert (
            ref.extra["workload"]["weighted_gap"]
            == fus.extra["workload"]["weighted_gap"]
        )
        assert (
            ref.extra["workload"]["weighted_max_load"]
            == fus.extra["workload"]["weighted_max_load"]
        )

    def test_initial_loads_residual_start(self):
        # Residual occupancy is the dynamic subsystem's entry point
        # (run_heavy(initial_loads=...), below the registry's option
        # surface).
        from repro.core.heavy import dynamic_heavy

        initial = np.random.default_rng(8).integers(
            0, 50, size=64
        ).astype(np.int64)
        with use_backend("reference"):
            ref = dynamic_heavy(
                10_000, 64, initial_loads=initial, seed=9, mode="perball"
            )
        with use_backend("fused"):
            fus = dynamic_heavy(
                10_000, 64, initial_loads=initial, seed=9, mode="perball"
            )
        np.testing.assert_array_equal(ref.loads, fus.loads)
        assert ref.placed == fus.placed
        assert ref.rounds == fus.rounds
        assert ref.total_messages == fus.total_messages

    def test_per_ball_message_counters(self):
        ref, fus = _run_pair("heavy", 10_000, 64, seed=4, mode="perball")
        np.testing.assert_array_equal(
            ref.messages.ball_sent, fus.messages.ball_sent
        )
        np.testing.assert_array_equal(
            ref.messages.ball_received, fus.messages.ball_received
        )
        np.testing.assert_array_equal(
            ref.messages.bin_received, fus.messages.bin_received
        )
        np.testing.assert_array_equal(
            ref.messages.bin_sent, fus.messages.bin_sent
        )

    def test_trial_batched_replication(self):
        with use_backend("reference"):
            ref = repro.replicate("heavy", 20_000, 64, trials=8, seed=0)
        with use_backend("fused"):
            fus = repro.replicate("heavy", 20_000, 64, trials=8, seed=0)
        np.testing.assert_array_equal(ref.loads, fus.loads)
        np.testing.assert_array_equal(ref.gaps, fus.gaps)
        np.testing.assert_array_equal(
            ref.total_messages, fus.total_messages
        )

    def test_replicate_backend_argument(self):
        # The first-class backend= kwarg (which also rides the
        # sequential process-pool path) equals the ambient context.
        via_arg = repro.replicate(
            "heavy", 10_000, 64, trials=4, seed=1, backend="reference"
        )
        with use_backend("reference"):
            via_ctx = repro.replicate("heavy", 10_000, 64, trials=4, seed=1)
        np.testing.assert_array_equal(via_arg.loads, via_ctx.loads)

    def test_dynamic_churn(self):
        with use_backend("reference"):
            ref = repro.run_dynamic("heavy", 10_000, 64, seed=2, epochs=3)
        fus = repro.run_dynamic(
            "heavy", 10_000, 64, seed=2, epochs=3, backend="fused"
        )
        np.testing.assert_array_equal(ref.gaps, fus.gaps)
        np.testing.assert_array_equal(ref.loads, fus.loads)
        assert ref.churn_messages == fus.churn_messages


class TestSelectionMachinery:
    def test_registry_lists_both(self):
        assert "reference" in available_backends()
        assert "fused" in available_backends()
        assert DEFAULT_BACKEND == "fused"
        assert isinstance(get_backend("fused"), FusedBackend)
        assert isinstance(get_backend("reference"), ReferenceBackend)
        # fused inherits reference: the fallback *is* the specification.
        assert isinstance(get_backend("fused"), ReferenceBackend)

    def test_default_resolution(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend().name == DEFAULT_BACKEND

    def test_env_round_trip(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "reference")
        assert resolve_backend().name == "reference"
        res = repro.allocate("heavy", 2_000, 16, seed=0)
        assert res.extra["api"]["backend"] == "reference"

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "reference")
        res = repro.allocate("heavy", 2_000, 16, seed=0, backend="fused")
        assert res.extra["api"]["backend"] == "fused"

    def test_context_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "fused")
        with use_backend("reference"):
            assert resolve_backend().name == "reference"
        assert resolve_backend().name == "fused"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend("turbo")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            repro.allocate("heavy", 2_000, 16, seed=0, backend="turbo")

    def test_env_invalid_name_rejected(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "turbo")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend()

    def test_cli_backend_round_trip(self, capsys):
        from repro.__main__ import main

        assert main(
            ["heavy", "--m", "2000", "--n", "16", "--seed", "0",
             "--backend", "reference"]
        ) == 0
        ref_out = capsys.readouterr().out
        assert main(
            ["heavy", "--m", "2000", "--n", "16", "--seed", "0",
             "--backend", "fused"]
        ) == 0
        fus_out = capsys.readouterr().out
        # Identical describe() blocks: the backend changes nothing
        # observable but wall clock.
        assert ref_out == fus_out

    def test_cli_rejects_unknown_backend(self, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit) as excinfo:
            main(["heavy", "--m", "100", "--n", "8", "--backend", "turbo"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err


class TestKernelMicrobench:
    """The kernel_profile microbenchmark: timings carry a proof."""

    def test_records_cover_every_primitive(self):
        from repro.api.bench import benchmark_kernels, render_kernel_table

        records = benchmark_kernels(
            4_000, 32, seed=0, repeats=1, end_to_end_m=2_000
        )
        kernels = {(r.kernel, r.variant) for r in records}
        assert kernels == {
            ("grouped_accept", "contended"),
            ("grouped_accept", "uncontended"),
            ("priority_commit", "degree-2"),
            ("scatter_counts", "dense"),
            ("end_to_end", "heavy perball"),
        }
        for r in records:
            assert r.bitwise_equal
            assert r.reference_seconds >= 0 and r.fused_seconds >= 0
            assert r.speedup > 0
        table = render_kernel_table(records)
        assert "grouped_accept" in table and "speedup" in table

    def test_end_to_end_leg_is_optional(self):
        from repro.api.bench import benchmark_kernels

        records = benchmark_kernels(2_000, 16, seed=1, repeats=1)
        assert not any(r.kernel == "end_to_end" for r in records)

    def test_mismatch_raises_instead_of_recording(self, monkeypatch):
        from repro.api.bench import benchmark_kernels
        from repro.fastpath import backend as backend_mod

        class Broken(FusedBackend):
            def grouped_accept_with_priorities(
                self, choices, capacity, priorities
            ):
                out = super().grouped_accept_with_priorities(
                    choices, capacity, priorities
                )
                if out.size:
                    out[0] = ~out[0]
                return out

        monkeypatch.setitem(backend_mod._REGISTRY, "fused", Broken())
        with pytest.raises(RuntimeError, match="kernel backend mismatch"):
            benchmark_kernels(1_000, 16, seed=0, repeats=1)


class TestPinnedRegression:
    """The default-backend flip changed no values: the fused default
    reproduces the exact pre-PR reference output on a pinned seed."""

    PIN = {
        "max_load": 394,
        "gap": 3.375,
        "rounds": 9,
        "total_messages": 222357,
        "loads_crc32": 1248431448,
    }

    def _check(self, res):
        assert res.max_load == self.PIN["max_load"]
        assert res.gap == self.PIN["gap"]
        assert res.rounds == self.PIN["rounds"]
        assert res.total_messages == self.PIN["total_messages"]
        crc = zlib.crc32(np.ascontiguousarray(res.loads).tobytes())
        assert crc == self.PIN["loads_crc32"]

    def test_fused_default_matches_historical_reference(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        res = repro.allocate("heavy", 100_000, 256, seed=7)
        assert res.extra["api"]["backend"] == "fused"
        self._check(res)

    def test_reference_backend_reproduces_the_same_pin(self):
        res = repro.allocate(
            "heavy", 100_000, 256, seed=7, backend="reference"
        )
        assert res.extra["api"]["backend"] == "reference"
        self._check(res)
