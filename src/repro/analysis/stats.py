"""Empirical statistics over allocation runs.

These helpers compute the quantities the experiment tables report: the
max-load *gap* ``max_b load_b - m/n`` (the paper's headline metric — its
algorithms achieve gap ``O(1)``), load quantiles, and mean confidence
intervals over repeated seeded runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "ConfidenceInterval",
    "RunStatistics",
    "gap_statistics",
    "mean_confidence_interval",
    "percentiles",
    "sample_quantiles",
    "summarize_loads",
    "summarize_runs",
]

#: Default quantile grid reported by replication summaries.
DEFAULT_QUANTILES = (0.05, 0.25, 0.5, 0.75, 0.95, 0.99)

#: Default percentile grid of latency summaries (p50/p95/p99) — the
#: tail figures the service benchmarks report.
DEFAULT_PERCENTILES = (50.0, 95.0, 99.0)


@dataclass(frozen=True)
class ConfidenceInterval:
    """A mean estimate with a symmetric normal-approximation interval."""

    mean: float
    half_width: float
    level: float = 0.95

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.half_width:.2g}"


@dataclass(frozen=True)
class RunStatistics:
    """Load-distribution summary of a single allocation outcome."""

    m: int
    n: int
    max_load: int
    min_load: int
    gap: float  # max_load - m/n
    spread: int  # max_load - min_load
    mean_load: float
    std_load: float
    quantiles: dict[float, float] = field(default_factory=dict)

    def __str__(self) -> str:
        return (
            f"RunStatistics(m={self.m}, n={self.n}, max={self.max_load}, "
            f"gap={self.gap:.3f}, spread={self.spread})"
        )


def summarize_loads(loads: np.ndarray, m: int | None = None) -> RunStatistics:
    """Summarize a final load vector.

    Parameters
    ----------
    loads:
        Integer array of per-bin loads.
    m:
        Total number of balls; defaults to ``loads.sum()``.  Passing it
        explicitly lets callers assert conservation (a mismatch raises).
    """
    loads = np.asarray(loads)
    if loads.ndim != 1 or loads.size == 0:
        raise ValueError(f"loads must be a non-empty 1-D array, got shape {loads.shape}")
    total = int(loads.sum())
    if m is None:
        m = total
    elif m != total:
        raise ValueError(f"load vector sums to {total}, expected m={m}")
    n = loads.size
    max_load = int(loads.max())
    min_load = int(loads.min())
    qs = (0.5, 0.9, 0.99)
    quantiles = {q: float(np.quantile(loads, q)) for q in qs}
    return RunStatistics(
        m=m,
        n=n,
        max_load=max_load,
        min_load=min_load,
        gap=max_load - m / n,
        spread=max_load - min_load,
        mean_load=float(loads.mean()),
        std_load=float(loads.std()),
        quantiles=quantiles,
    )


def gap_statistics(load_vectors: Iterable[np.ndarray]) -> ConfidenceInterval:
    """Mean max-load gap over repeated runs, with a 95% CI."""
    gaps = [summarize_loads(np.asarray(v)).gap for v in load_vectors]
    if not gaps:
        raise ValueError("need at least one load vector")
    return mean_confidence_interval(gaps)


def sample_quantiles(
    values: Sequence[float],
    qs: Sequence[float] = DEFAULT_QUANTILES,
) -> dict[float, float]:
    """Empirical quantiles of a sample, keyed by probability.

    The workhorse of replication summaries: with hundreds of trials per
    instance the quantile curve of a metric (gap, rounds, messages) is
    the statistic the paper's w.h.p. claims speak to, not just the
    mean.  Uses numpy's default (linear-interpolation) estimator.
    """
    data = np.asarray(list(values), dtype=np.float64)
    if data.size == 0:
        raise ValueError("values must be non-empty")
    for q in qs:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile probabilities must be in [0, 1], got {q}")
    return {float(q): float(np.quantile(data, q)) for q in qs}


def percentiles(
    values: Sequence[float],
    ps: Sequence[float] = DEFAULT_PERCENTILES,
) -> dict[str, float]:
    """Percentile summary keyed by label: ``{"p50": ..., "p99": ...}``.

    The string-keyed sibling of :func:`sample_quantiles`, built on the
    same estimator — ``percentiles(v)[f"p{100 * q:g}"] ==
    sample_quantiles(v, (q,))[q]`` for every probability.  This is the
    shape latency reports serialize (p50/p95/p99 event latency in the
    service benchmarks): JSON-safe keys, no float-key round-tripping.
    """
    for p in ps:
        if not 0.0 <= p <= 100.0:
            raise ValueError(
                f"percentiles must be in [0, 100], got {p}"
            )
    qs = [p / 100.0 for p in ps]
    by_q = sample_quantiles(values, qs)
    return {f"p{float(p):g}": by_q[p / 100.0] for p in ps}


#: Two-sided z-scores for the confidence levels used in reports.
_Z_SCORES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def mean_confidence_interval(
    values: Sequence[float], *, level: float = 0.95
) -> ConfidenceInterval:
    """Normal-approximation confidence interval for the mean of ``values``.

    With the small repetition counts used in benchmarks (5-20 runs) a
    t-interval would be slightly wider; the normal interval is kept for
    simplicity and the reports label it as approximate.
    """
    if level not in _Z_SCORES:
        raise ValueError(f"level must be one of {sorted(_Z_SCORES)}, got {level}")
    data = np.asarray(list(values), dtype=np.float64)
    if data.size == 0:
        raise ValueError("values must be non-empty")
    mean = float(data.mean())
    if data.size == 1:
        return ConfidenceInterval(mean=mean, half_width=0.0, level=level)
    sem = float(data.std(ddof=1)) / math.sqrt(data.size)
    return ConfidenceInterval(mean=mean, half_width=_Z_SCORES[level] * sem, level=level)


def summarize_runs(
    load_vectors: Sequence[np.ndarray],
) -> dict[str, ConfidenceInterval]:
    """Aggregate several runs into CI summaries keyed by metric name."""
    if not load_vectors:
        raise ValueError("need at least one run")
    stats = [summarize_loads(np.asarray(v)) for v in load_vectors]
    return {
        "gap": mean_confidence_interval([s.gap for s in stats]),
        "max_load": mean_confidence_interval([float(s.max_load) for s in stats]),
        "spread": mean_confidence_interval([float(s.spread) for s in stats]),
    }
