"""Tests for the virtual-bin reduction."""

import numpy as np
import pytest

from repro.light.lw16 import LightConfig
from repro.light.virtual import VirtualBinMap, run_light_on_virtual_bins


class TestVirtualBinMap:
    def test_counts(self):
        vmap = VirtualBinMap(n_real=10, factor=3)
        assert vmap.n_virtual == 30

    def test_to_real_is_modulo(self):
        vmap = VirtualBinMap(n_real=4, factor=2)
        assert np.array_equal(
            vmap.to_real(np.array([0, 3, 4, 7])), np.array([0, 3, 0, 3])
        )

    def test_to_real_out_of_range(self):
        vmap = VirtualBinMap(n_real=4, factor=2)
        with pytest.raises(ValueError):
            vmap.to_real(np.array([8]))
        with pytest.raises(ValueError):
            vmap.to_real(np.array([-1]))

    def test_fold_loads(self):
        vmap = VirtualBinMap(n_real=3, factor=2)
        virtual = np.array([1, 2, 3, 10, 20, 30])
        assert np.array_equal(vmap.fold_loads(virtual), [11, 22, 33])

    def test_fold_wrong_shape(self):
        vmap = VirtualBinMap(n_real=3, factor=2)
        with pytest.raises(ValueError):
            vmap.fold_loads(np.zeros(5))

    def test_every_real_bin_gets_factor_virtuals(self):
        vmap = VirtualBinMap(n_real=7, factor=4)
        reals = vmap.to_real(np.arange(vmap.n_virtual))
        counts = np.bincount(reals, minlength=7)
        assert (counts == 4).all()

    def test_for_balls_capacity(self):
        vmap = VirtualBinMap.for_balls(100, 10, capacity=2)
        assert 2 * vmap.n_virtual >= 100
        # one unit of slack factor
        assert vmap.factor == 100 // 20 + 1

    def test_for_balls_zero(self):
        assert VirtualBinMap.for_balls(0, 10).factor == 1

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            VirtualBinMap(n_real=0, factor=1)
        with pytest.raises(ValueError):
            VirtualBinMap(n_real=1, factor=0)


class TestRunOnVirtualBins:
    def test_loads_fold_and_conserve(self):
        real_loads, outcome, vmap = run_light_on_virtual_bins(
            500, 100, seed=3
        )
        assert real_loads.shape == (100,)
        assert real_loads.sum() == 500
        assert outcome.loads.sum() == 500

    def test_real_load_bounded_by_2g(self):
        real_loads, outcome, vmap = run_light_on_virtual_bins(
            300, 100, seed=5
        )
        assert real_loads.max() <= 2 * vmap.factor

    def test_zero_balls(self):
        real_loads, outcome, vmap = run_light_on_virtual_bins(0, 10, seed=1)
        assert real_loads.sum() == 0
        assert outcome.rounds == 0

    def test_explicit_factor(self):
        real_loads, outcome, vmap = run_light_on_virtual_bins(
            50, 10, seed=2, factor=5
        )
        assert vmap.factor == 5
        assert real_loads.sum() == 50

    def test_insufficient_factor_rejected(self):
        with pytest.raises(ValueError, match="factor"):
            run_light_on_virtual_bins(100, 10, seed=2, factor=1)

    def test_custom_capacity(self):
        real_loads, outcome, vmap = run_light_on_virtual_bins(
            120, 40, seed=2, config=LightConfig(capacity=1)
        )
        assert outcome.loads.max() <= 1
        assert real_loads.max() <= vmap.factor
