"""Tests for repro.analysis.berry_esseen (Theorem 4 / Claim 5)."""

import math

import numpy as np
import pytest

from repro.analysis.berry_esseen import (
    berry_esseen_bound,
    binomial_upper_deviation_probability,
    overload_probability_lower_bound,
)


class TestBerryEsseenBound:
    def test_decays_like_inverse_sqrt(self):
        b1 = berry_esseen_bound(10_000, 0.001)
        b2 = berry_esseen_bound(40_000, 0.001)
        assert b2 == pytest.approx(b1 / 2, rel=1e-9)

    def test_positive(self):
        assert berry_esseen_bound(100, 0.5) > 0

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            berry_esseen_bound(10, 0.0)
        with pytest.raises(ValueError):
            berry_esseen_bound(10, 1.0)

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            berry_esseen_bound(0, 0.5)

    def test_small_p_scaling(self):
        # For small p, bound ~ c / sqrt(M p): halves when M*p quadruples.
        b1 = berry_esseen_bound(10**6, 1e-4)
        b2 = berry_esseen_bound(4 * 10**6, 1e-4)
        assert b2 == pytest.approx(b1 / 2, rel=1e-3)


class TestOverloadLowerBound:
    def test_vacuous_when_m_small(self):
        # M/n too small: Berry-Esseen error swamps the normal tail.
        assert overload_probability_lower_bound(100, 50) == 0.0

    def test_positive_when_m_large(self):
        # The Claim 5 prerequisite M >= Cn with C large.
        p = overload_probability_lower_bound(10**7, 100)
        assert p > 0

    def test_is_a_valid_lower_bound(self):
        # Exact binomial tail must dominate the certified lower bound.
        for m_balls, n in [(10**6, 100), (10**7, 1000)]:
            lower = overload_probability_lower_bound(m_balls, n)
            exact = binomial_upper_deviation_probability(m_balls, n)
            assert exact >= lower

    def test_monotone_in_m(self):
        vals = [
            overload_probability_lower_bound(m, 100)
            for m in (10**5, 10**6, 10**7)
        ]
        assert vals == sorted(vals)

    def test_needs_two_bins(self):
        with pytest.raises(ValueError):
            overload_probability_lower_bound(100, 1)


class TestExactBinomialTail:
    def test_known_value(self):
        # X ~ Bin(M, 1/n), mu = 100, threshold = mu + 2 sqrt(mu) = 120:
        # survival there is ~2.6% (Poisson-like).
        p = binomial_upper_deviation_probability(10**5, 10**3, a=2.0)
        assert 0.015 < p < 0.04

    def test_a_zero_is_about_half(self):
        p = binomial_upper_deviation_probability(10**6, 100, a=0.0)
        assert 0.4 < p < 0.55

    def test_matches_monte_carlo(self, rng):
        m_balls, n = 50_000, 200
        mu = m_balls / n
        threshold = math.ceil(mu + 2 * math.sqrt(mu))
        samples = rng.binomial(m_balls, 1 / n, size=40_000)
        emp = float(np.mean(samples >= threshold))
        exact = binomial_upper_deviation_probability(m_balls, n)
        assert emp == pytest.approx(exact, abs=0.005)

    def test_claim5_constant_probability(self):
        # Claim 5: P[X >= mu + 2 sqrt(mu)] = Omega(1) — concretely the
        # normal tail at 2 is ~2.3%, so the exact value across a wide
        # sweep stays within [1%, 5%].
        for m_balls, n in [(10**5, 100), (10**6, 1000), (10**7, 128)]:
            p = binomial_upper_deviation_probability(m_balls, n)
            assert 0.01 < p < 0.05

    def test_invalid(self):
        with pytest.raises(ValueError):
            binomial_upper_deviation_probability(-1, 10)
        with pytest.raises(ValueError):
            binomial_upper_deviation_probability(10, 0)
